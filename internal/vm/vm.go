// Package vm implements the virtual-memory substrate: a simulated
// physical-page allocator and a 5-level radix-tree page table per address
// space. Page-table nodes are themselves allocated physical pages, so
// every walk step has a real physical PTE address — eight 8-byte PTEs
// share one 64-byte cache block, and page-walk references genuinely
// contend with demand traffic in the cache hierarchy (the property xPTP,
// PTP and T-DRRIP act on).
//
// Section 6.5's multi-page-size scenario is supported by deterministically
// mapping a configurable fraction of 2MB-aligned virtual regions onto 2MB
// pages; translations for those regions terminate at the level-2 leaf.
package vm

import (
	"fmt"

	"itpsim/internal/arch"
)

// Levels of the radix tree, leaf-most last. Level numbering follows x86:
// 5 (PML5) down to 1 (PT).
const (
	NumLevels   = 5
	ptesPerNode = 512
	pteSize     = 8
)

// LevelShift returns the VA bit position indexing level l (5..1):
// L1 indexes bits [20:12], L2 [29:21], ..., L5 [56:48].
//
//itp:hotpath
func LevelShift(level int) uint {
	return uint(arch.PageBits4K + 9*(level-1))
}

// levelIndex extracts the 9-bit radix index of va at level l.
//
//itp:hotpath
func levelIndex(va arch.Addr, level int) int {
	return int((va >> LevelShift(level)) & (ptesPerNode - 1))
}

// PhysAlloc hands out physical pages from a simulated DRAM. It is a bump
// allocator; sequential allocation mirrors a freshly booted machine and
// keeps runs deterministic.
type PhysAlloc struct {
	next arch.Addr
	size arch.Addr
}

// NewPhysAlloc creates an allocator over size bytes of physical memory,
// starting above a small reserved region.
func NewPhysAlloc(size uint64) *PhysAlloc {
	return &PhysAlloc{next: 1 << 20, size: arch.Addr(size)}
}

// Alloc returns the base physical address of a fresh page of 2^bits bytes.
// It panics if simulated DRAM is exhausted — a configuration error, since
// workloads declare their footprints up front.
func (a *PhysAlloc) Alloc(bits uint8) arch.Addr {
	sz := arch.Addr(1) << bits
	// Align.
	base := (a.next + sz - 1) &^ (sz - 1)
	if base+sz > a.size {
		panic(fmt.Sprintf("vm: out of simulated physical memory (%d bytes)", a.size))
	}
	a.next = base + sz
	return base
}

// Allocated reports how many bytes have been handed out.
func (a *PhysAlloc) Allocated() uint64 { return uint64(a.next) }

// WalkStep is one memory reference of a page walk: the physical address
// of the PTE consulted at the given level.
type WalkStep struct {
	Level   int // 5..1 (or 2 for a 2MB leaf)
	PTEAddr arch.Addr
}

// Translation is the result of resolving a virtual address.
type Translation struct {
	PPN      uint64 // physical page number in units of the page size
	PageBits uint8  // arch.PageBits4K or arch.PageBits2M
	// Steps are the PTE references of a full (uncached) walk, root
	// first. A walker with PSCs will skip a prefix of these.
	Steps    [NumLevels]WalkStep
	NumSteps int
}

// PhysAddr reconstructs the full physical address for va.
//
//itp:hotpath
func (t Translation) PhysAddr(va arch.Addr) arch.Addr {
	mask := (arch.Addr(1) << t.PageBits) - 1
	return t.PPN<<t.PageBits | (va & mask)
}

// node is one radix-tree node (a 4KB physical page of 512 PTEs).
type node struct {
	phys     arch.Addr
	children map[int]*node
	// leafPPN holds translations at leaf level (level 1 for 4KB pages,
	// level 2 for 2MB pages).
	leafPPN map[int]uint64
}

func (pt *PageTable) newNode() *node {
	return &node{
		phys:     pt.alloc.Alloc(arch.PageBits4K),
		children: make(map[int]*node),
		leafPPN:  make(map[int]uint64),
	}
}

// PageTable is one address space's 5-level radix page table. Pages are
// allocated lazily on first touch.
type PageTable struct {
	alloc *PhysAlloc
	root  *node
	// hugeFraction is the probability that a 2MB-aligned virtual region
	// is backed by a 2MB page.
	hugeFraction float64
	seed         uint64
	pages4K      uint64
	pages2M      uint64
}

// NewPageTable creates an address space over the shared allocator.
// hugeFraction ∈ [0,1] selects Section 6.5's scenario; seed makes the
// huge-page layout deterministic per address space.
func NewPageTable(alloc *PhysAlloc, hugeFraction float64, seed uint64) *PageTable {
	pt := &PageTable{alloc: alloc, hugeFraction: hugeFraction, seed: seed}
	pt.root = pt.newNode()
	return pt
}

// isHuge decides deterministically whether va's 2MB region uses a 2MB page.
//
//itp:hotpath
func (pt *PageTable) isHuge(va arch.Addr) bool {
	if pt.hugeFraction <= 0 {
		return false
	}
	if pt.hugeFraction >= 1 {
		return true
	}
	h := arch.PageNumber2M(va) * 0x9e3779b97f4a7c15
	h ^= pt.seed
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 29
	return float64(h>>11)/float64(1<<53) < pt.hugeFraction
}

// Translate resolves va, building page-table nodes and allocating the
// backing physical page on first touch. The returned Steps list the PTE
// references of a full walk.
//
//itp:hotpath
func (pt *PageTable) Translate(va arch.Addr) Translation {
	huge := pt.isHuge(va)
	leafLevel := 1
	pageBits := uint8(arch.PageBits4K)
	if huge {
		leafLevel = 2
		pageBits = arch.PageBits2M
	}

	var tr Translation
	tr.PageBits = pageBits
	n := pt.root
	for level := NumLevels; level >= leafLevel; level-- {
		idx := levelIndex(va, level)
		tr.Steps[tr.NumSteps] = WalkStep{Level: level, PTEAddr: n.phys + arch.Addr(idx*pteSize)}
		tr.NumSteps++
		if level == leafLevel {
			ppn, ok := n.leafPPN[idx]
			if !ok {
				//itp:cold — first touch of a page; allocation is off the steady-state path
				ppn = uint64(pt.alloc.Alloc(pageBits) >> pageBits)
				n.leafPPN[idx] = ppn
				if huge {
					pt.pages2M++
				} else {
					pt.pages4K++
				}
			}
			tr.PPN = ppn
			return tr
		}
		child, ok := n.children[idx]
		if !ok {
			//itp:cold — first touch of a table node; allocation is off the steady-state path
			child = pt.newNode()
			n.children[idx] = child
		}
		n = child
	}
	panic("vm: unreachable walk termination")
}

// Pages returns how many 4KB and 2MB pages this address space has mapped.
func (pt *PageTable) Pages() (p4k, p2m uint64) { return pt.pages4K, pt.pages2M }

// HugeFraction returns the configured 2MB-page fraction.
func (pt *PageTable) HugeFraction() float64 { return pt.hugeFraction }
