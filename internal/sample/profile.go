package sample

import (
	"fmt"
	"sync"

	"itpsim/internal/config"
	"itpsim/internal/metrics"
	"itpsim/internal/shard"
	"itpsim/internal/sim"
	"itpsim/internal/workload"
)

// ProfileConfig is the baseline machine configuration of the profiling
// pre-pass: the system under study with every replacement policy forced
// to LRU. Phase structure is a property of the workload's access stream,
// not of the policy being evaluated, so one profile serves every policy
// point of a sweep — that amortisation is where sampling's speedup over
// serial simulation comes from in a campaign.
func ProfileConfig(sys config.SystemConfig) config.SystemConfig {
	sys.STLBPolicy = "lru"
	sys.L2CPolicy = "lru"
	sys.LLCPolicy = "lru"
	return sys
}

// Profile runs the profiling pre-pass: one detailed serial simulation of
// warmup+measure instructions at the baseline configuration, returning
// the per-window metric series the classifier clusters. attach, when
// non-nil, receives the machine before the run starts (harness watchdog
// wiring).
func Profile(cfg Config, src shard.Source, attach func(*sim.Machine)) ([]metrics.WindowRecord, error) {
	m, err := sim.NewMachine(ProfileConfig(cfg.System))
	if err != nil {
		return nil, err
	}
	w := m.InstrumentMetrics(metrics.NewRegistry(), cfg.Window)
	if attach != nil {
		attach(m)
	}
	p := workload.Prefetch(src.New())
	defer p.Close()
	if _, err := m.RunWarmup([]workload.Stream{p}, 0, cfg.Warmup+cfg.Measure); err != nil {
		return nil, fmt.Errorf("sample: profile of %s: %w", src.Name, err)
	}
	return w.Records(), nil
}

// Profiles caches profiling pre-passes across a sweep, keyed by workload
// and profile geometry (baseline configuration, window, warmup, measure)
// — the policy fields under study are deliberately absent from the key,
// since the profile forces them to the baseline. Concurrent Get calls
// for the same key share one run.
type Profiles struct {
	mu sync.Mutex
	m  map[string]*profileEntry
}

type profileEntry struct {
	once sync.Once
	recs []metrics.WindowRecord
	err  error
}

// NewProfiles returns an empty profile cache.
func NewProfiles() *Profiles { return &Profiles{m: make(map[string]*profileEntry)} }

// key identifies one profile. The full baseline config is serialised in:
// geometry fields (cache sizes, TLB shapes, huge-page fraction, ...) all
// shift the profile's metric series.
func (p *Profiles) key(cfg Config, src shard.Source) string {
	return fmt.Sprintf("%s|w%d|wu%d|m%d|%+v", src.Name, cfg.Window, cfg.Warmup, cfg.Measure, ProfileConfig(cfg.System))
}

// Get returns the cached profile for (cfg, src), running the pre-pass on
// first use. attach is forwarded to Profile on the goroutine that runs
// it.
func (p *Profiles) Get(cfg Config, src shard.Source, attach func(*sim.Machine)) ([]metrics.WindowRecord, error) {
	k := p.key(cfg, src)
	p.mu.Lock()
	e, ok := p.m[k]
	if !ok {
		e = &profileEntry{}
		p.m[k] = e
	}
	p.mu.Unlock()
	e.once.Do(func() {
		e.recs, e.err = Profile(cfg, src, attach)
	})
	return e.recs, e.err
}
