package sample

import (
	"math"
	"os"
	"reflect"
	"testing"

	"itpsim/internal/config"
	"itpsim/internal/harness"
	"itpsim/internal/shard"
	"itpsim/internal/sim"
	"itpsim/internal/stats"
	"itpsim/internal/workload"
)

// The sampled-run differential battery: serial-vs-sampled equivalence
// across the four policy quadrants of the paper's design space. A
// sampled run approximates the serial one through BOTH phase sampling
// (K representatives stand for all Measure/Window intervals) and
// functional warmup, so its bounds are wider than sharding's; they are
// declared per geometry below and documented in DESIGN.md §14 / README.
// The degenerate K=1 plan with fully detailed warmup is exact and is
// asserted beacon-chain-identical to the serial run.

type quadrant struct {
	name string
	stlb string
	l2c  string
}

var quadrants = []quadrant{
	{"lru-lru", "lru", "lru"},
	{"itp-lru", "itp", "lru"},
	{"lru-xptp", "lru", "xptp"},
	{"itp-xptp", "itp", "xptp"},
}

// bounds are the declared serial-vs-sampled error bounds for one battery
// geometry (see shard's battery for the delta definitions).
type bounds struct {
	ipc     float64 // |IPC_sample/IPC_serial - 1|
	mpki    float64 // relative STLB demand-MPKI delta (floored, see mpkiDelta)
	walkLat float64 // relative mean instruction-PTW-latency delta
}

// geometry is one battery scale with its declared bounds.
type geometry struct {
	phases       int
	window       uint64
	warmup       uint64
	detailWarmup uint64
	measure      uint64
	b            bounds
}

// sampleScale returns the battery geometry: CI scale by default, the
// issue's 8-phase 2M-instruction full scale under ITPSIM_SAMPLE_SCALE=full
// (make sample-equiv).
func sampleScale() geometry {
	if os.Getenv("ITPSIM_SAMPLE_SCALE") == "full" {
		// Measured worst deltas across the quadrants: IPC 0.151,
		// MPKI 0.077, walk(i) 0.211.
		return geometry{
			phases: 8, window: 50_000, warmup: 150_000, detailWarmup: 50_000, measure: 2_000_000,
			b: bounds{ipc: 0.25, mpki: 0.15, walkLat: 0.35},
		}
	}
	// Measured worst deltas across the quadrants: IPC 0.069, MPKI 0.006,
	// walk(i) 0.127.
	return geometry{
		phases: 4, window: 20_000, warmup: 120_000, detailWarmup: 20_000, measure: 240_000,
		b: bounds{ipc: 0.12, mpki: 0.05, walkLat: 0.20},
	}
}

func testSource(t testing.TB, name string) shard.Source {
	t.Helper()
	spec, err := workload.NewCatalog(120, 20).Get(name)
	if err != nil {
		t.Fatalf("catalog: %v", err)
	}
	return shard.Source{Name: name, New: spec.NewStream}
}

func quadrantConfig(q quadrant) config.SystemConfig {
	cfg := config.Default()
	cfg.STLBPolicy = q.stlb
	cfg.L2CPolicy = q.l2c
	return cfg
}

// serialRun is the reference: one machine, one stream, the plain
// RunWarmup path.
func serialRun(t testing.TB, sys config.SystemConfig, src shard.Source, warmup, measure, beaconInterval uint64) (*stats.Sim, uint64, uint64) {
	t.Helper()
	m, err := sim.NewMachine(sys)
	if err != nil {
		t.Fatalf("machine: %v", err)
	}
	if beaconInterval > 0 {
		m.EnableBeacons(beaconInterval)
	}
	p := workload.Prefetch(src.New())
	defer p.Close()
	res, err := m.RunWarmup([]workload.Stream{p}, warmup, measure)
	if err != nil {
		t.Fatalf("serial run: %v", err)
	}
	chain, count := m.BeaconChain()
	return res.Stats, chain, count
}

func relDelta(a, b float64) float64 {
	if b == 0 {
		if a == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(a/b - 1)
}

// mpkiDelta compares MPKIs with an absolute floor, like shard's battery.
func mpkiDelta(a, b float64) float64 {
	if b < 0.05 && a < 0.05 {
		return 0
	}
	return relDelta(a, b)
}

// TestSampledEquivalence is the battery headline: for every policy
// quadrant, a K-phase sampled run must agree with the serial run within
// the declared bounds on IPC, STLB MPKI, and mean instruction page-walk
// latency — while simulating only K·(DetailWarmup+Window) instructions
// in detail instead of Warmup+Measure.
func TestSampledEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("differential battery simulates millions of instructions")
	}
	g := sampleScale()
	src := testSource(t, workload.NewCatalog(120, 20).ServerNames()[0])
	ix := shard.NewIndex()
	profiles := NewProfiles()
	for _, q := range quadrants {
		t.Run(q.name, func(t *testing.T) {
			sys := quadrantConfig(q)
			serial, _, _ := serialRun(t, sys, src, g.warmup, g.measure, 0)

			cfg := Config{
				System:       sys,
				Phases:       g.phases,
				Window:       g.window,
				Warmup:       g.warmup,
				DetailWarmup: g.detailWarmup,
				Measure:      g.measure,
			}
			res, err := Run(cfg, "equiv|"+q.name, src, ix, profiles, harness.Options{})
			if err != nil {
				t.Fatalf("sampled run: %v", err)
			}

			if got, want := res.Stats.TotalInstructions(), serial.TotalInstructions(); got != want {
				t.Errorf("weighted instructions %d, serial %d: phase weights must cover the measured region exactly", got, want)
			}
			if d := relDelta(res.IPC, serial.IPC()); d > g.b.ipc {
				t.Errorf("IPC delta %.4f > bound %.4f (sample %.4f serial %.4f)", d, g.b.ipc, res.IPC, serial.IPC())
			}
			instr := serial.TotalInstructions()
			sInstr := res.Stats.TotalInstructions()
			if d := mpkiDelta(res.Stats.STLB.MPKI(sInstr), serial.STLB.MPKI(instr)); d > g.b.mpki {
				t.Errorf("STLB MPKI delta %.4f > bound %.4f (sample %.3f serial %.3f)",
					d, g.b.mpki, res.Stats.STLB.MPKI(sInstr), serial.STLB.MPKI(instr))
			}
			if d := relDelta(res.Stats.AvgWalkLatency(0), serial.AvgWalkLatency(0)); d > g.b.walkLat {
				t.Errorf("instr PTW latency delta %.4f > bound %.4f (sample %.1f serial %.1f)",
					d, g.b.walkLat, res.Stats.AvgWalkLatency(0), serial.AvgWalkLatency(0))
			}
			t.Logf("%s: IPC %.4f/%.4f (Δ%.4f)  STLB MPKI %.3f/%.3f (Δ%.4f)  walk-lat %.1f/%.1f (Δ%.4f)",
				q.name, res.IPC, serial.IPC(), relDelta(res.IPC, serial.IPC()),
				res.Stats.STLB.MPKI(sInstr), serial.STLB.MPKI(instr),
				mpkiDelta(res.Stats.STLB.MPKI(sInstr), serial.STLB.MPKI(instr)),
				res.Stats.AvgWalkLatency(0), serial.AvgWalkLatency(0),
				relDelta(res.Stats.AvgWalkLatency(0), serial.AvgWalkLatency(0)))
		})
	}
}

// TestOnePhaseExact: the degenerate K=1 plan with fully detailed warmup
// is not an approximation — it must reproduce the serial run bit-exactly,
// beacon chain included, for every quadrant.
func TestOnePhaseExact(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates millions of instructions")
	}
	g := sampleScale()
	const beacon = 50_000
	src := testSource(t, workload.NewCatalog(120, 20).ServerNames()[1])
	ix := shard.NewIndex()
	for _, q := range quadrants {
		t.Run(q.name, func(t *testing.T) {
			sys := quadrantConfig(q)
			serial, chain, count := serialRun(t, sys, src, g.warmup, g.measure, beacon)

			cfg := Config{
				System:         sys,
				Phases:         1,
				Warmup:         g.warmup,
				Measure:        g.measure,
				BeaconInterval: beacon,
			}
			res, err := Run(cfg, "exact|"+q.name, src, ix, nil, harness.Options{})
			if err != nil {
				t.Fatalf("1-phase run: %v", err)
			}
			if !reflect.DeepEqual(res.Stats, serial) {
				t.Errorf("1-phase stats differ from serial:\nsample: %vserial: %v", res.Stats, serial)
			}
			stamp := res.Beacon()
			if stamp == nil {
				t.Fatal("1-phase result has no beacon stamp")
			}
			if stamp.Chain != chain || stamp.Count != count {
				t.Errorf("beacon chain %#x/%d, serial %#x/%d: 1-phase mode must be state-identical",
					stamp.Chain, stamp.Count, chain, count)
			}
		})
	}
}

// TestMultiPhaseNoBeacon: a K>1 result has no serial-comparable beacon,
// nor does a K=1 plan whose warmup is partly functional.
func TestMultiPhaseNoBeacon(t *testing.T) {
	multi := &Result{Plan: &Plan{Config: Config{Phases: 4}}, Reps: make([]RepResult, 4)}
	if multi.Beacon() != nil {
		t.Error("multi-phase result claimed a serial-comparable beacon")
	}
	funcWarm := &Result{
		Plan: &Plan{Config: Config{Phases: 1}},
		Reps: []RepResult{{Segment: shard.Segment{FuncWarmup: 100}}},
	}
	if funcWarm.Beacon() != nil {
		t.Error("functionally warmed result claimed a serial-comparable beacon")
	}
}
