package sample

// Deterministic k-means for phase classification. The clustering runs in
// the deterministic core (a sampled run's plan must replay bit-exactly
// from its manifest), so randomness comes from an explicitly seeded
// splitmix64 sequence, initialisation is farthest-point (deterministic
// given the seed of the first centre), and every tie breaks toward the
// lowest index.

// rng is splitmix64: tiny, seedable, and good enough to pick one initial
// centre.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// dist2 is squared euclidean distance.
func dist2(a, b []float64) float64 {
	var d float64
	for i := range a {
		t := a[i] - b[i]
		d += t * t
	}
	return d
}

// kmeans clusters vecs into k groups and returns the assignment of each
// vector. Initialisation: the seed picks the first centre, every further
// centre is the point farthest from all chosen centres (max-min
// distance, ties to the lowest index). Lloyd iterations run until the
// assignment is stable or iters is exhausted; a cluster emptied by a
// reassignment round is re-seeded with the point farthest from its own
// centre. Callers guarantee 1 <= k <= len(vecs).
func kmeans(vecs [][]float64, k int, seed uint64, iters int) []int {
	n := len(vecs)
	dim := len(vecs[0])
	centers := make([][]float64, k)
	for i := range centers {
		centers[i] = make([]float64, dim)
	}
	r := rng{s: seed}
	copy(centers[0], vecs[r.next()%uint64(n)])

	// Farthest-point init: minDist tracks each point's distance to the
	// nearest already-chosen centre.
	minDist := make([]float64, n)
	for i := range minDist {
		minDist[i] = dist2(vecs[i], centers[0])
	}
	for c := 1; c < k; c++ {
		far := 0
		for i := 1; i < n; i++ {
			if minDist[i] > minDist[far] {
				far = i
			}
		}
		copy(centers[c], vecs[far])
		for i := range minDist {
			if d := dist2(vecs[i], centers[c]); d < minDist[i] {
				minDist[i] = d
			}
		}
	}

	assign := make([]int, n)
	counts := make([]int, k)
	for it := 0; it < iters; it++ {
		changed := false
		for i, v := range vecs {
			best, bestD := 0, dist2(v, centers[0])
			for c := 1; c < k; c++ {
				if d := dist2(v, centers[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best || it == 0 {
				if assign[i] != best {
					changed = true
				}
				assign[i] = best
			}
		}
		if it > 0 && !changed {
			break
		}
		// Recompute centres.
		for c := range centers {
			counts[c] = 0
			for d := range centers[c] {
				centers[c][d] = 0
			}
		}
		for i, v := range vecs {
			c := assign[i]
			counts[c]++
			for d := range v {
				centers[c][d] += v[d]
			}
		}
		for c := range centers {
			if counts[c] == 0 {
				// Re-seed an emptied cluster with the point farthest from
				// its current (stale) centre among points in crowded
				// clusters; ties to the lowest index.
				far, farD := -1, -1.0
				for i, v := range vecs {
					if counts[assign[i]] <= 1 {
						continue
					}
					if d := dist2(v, centers[c]); d > farD {
						far, farD = i, d
					}
				}
				if far >= 0 {
					counts[assign[far]]--
					assign[far] = c
					counts[c] = 1
					copy(centers[c], vecs[far])
				}
				continue
			}
			inv := 1 / float64(counts[c])
			for d := range centers[c] {
				centers[c][d] *= inv
			}
		}
	}

	// Final assignment pass against the last centres so re-seeded
	// clusters settle.
	for i, v := range vecs {
		best, bestD := 0, dist2(v, centers[0])
		for c := 1; c < k; c++ {
			if d := dist2(v, centers[c]); d < bestD {
				best, bestD = c, d
			}
		}
		assign[i] = best
	}
	return assign
}

// medoid returns, for each cluster, the index of the member closest to
// the cluster mean (ties to the lowest index), together with the member
// counts. Clusters with no members get medoid -1.
func medoids(vecs [][]float64, assign []int, k int) (rep []int, count []int) {
	dim := len(vecs[0])
	centers := make([][]float64, k)
	count = make([]int, k)
	for c := range centers {
		centers[c] = make([]float64, dim)
	}
	for i, v := range vecs {
		c := assign[i]
		count[c]++
		for d := range v {
			centers[c][d] += v[d]
		}
	}
	for c := range centers {
		if count[c] > 0 {
			inv := 1 / float64(count[c])
			for d := range centers[c] {
				centers[c][d] *= inv
			}
		}
	}
	rep = make([]int, k)
	best := make([]float64, k)
	for c := range rep {
		rep[c] = -1
	}
	for i, v := range vecs {
		c := assign[i]
		d := dist2(v, centers[c])
		if rep[c] < 0 || d < best[c] {
			rep[c], best[c] = i, d
		}
	}
	return rep, count
}
