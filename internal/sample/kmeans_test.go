package sample

import (
	"reflect"
	"testing"
)

// cloud builds n points around each of the given centres (1-D spread in
// every dimension, deterministic pseudo-noise).
func cloud(centres [][]float64, n int) [][]float64 {
	r := rng{s: 7}
	var out [][]float64
	for _, c := range centres {
		for i := 0; i < n; i++ {
			v := make([]float64, len(c))
			for d := range v {
				noise := float64(r.next()%1000)/1000 - 0.5 // [-0.5, 0.5)
				v[d] = c[d] + 0.2*noise
			}
			out = append(out, v)
		}
	}
	return out
}

// TestKMeansSeparatesClusters: well-separated clouds must each land in
// their own cluster, with every member of a cloud assigned together.
func TestKMeansSeparatesClusters(t *testing.T) {
	centres := [][]float64{{0, 0}, {10, 0}, {0, 10}}
	vecs := cloud(centres, 20)
	assign := kmeans(vecs, 3, 1, 32)
	for c := 0; c < 3; c++ {
		want := assign[c*20]
		for i := 0; i < 20; i++ {
			if assign[c*20+i] != want {
				t.Fatalf("cloud %d split across clusters: member %d in %d, member 0 in %d", c, i, assign[c*20+i], want)
			}
		}
		for prev := 0; prev < c; prev++ {
			if assign[prev*20] == want {
				t.Fatalf("clouds %d and %d merged into cluster %d", prev, c, want)
			}
		}
	}
}

// TestKMeansDeterministic: identical inputs and seed give identical
// assignments; a different seed may differ but must still be a valid
// partition.
func TestKMeansDeterministic(t *testing.T) {
	vecs := cloud([][]float64{{0, 0}, {5, 5}}, 30)
	a := kmeans(vecs, 2, 42, 32)
	b := kmeans(vecs, 2, 42, 32)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different assignments")
	}
	c := kmeans(vecs, 2, 43, 32)
	for _, x := range c {
		if x < 0 || x >= 2 {
			t.Fatalf("assignment %d out of range", x)
		}
	}
}

// TestKMeansDegenerate: k equal to the point count puts every point in
// its own cluster; identical points collapse gracefully.
func TestKMeansDegenerate(t *testing.T) {
	vecs := [][]float64{{0}, {1}, {2}, {3}}
	assign := kmeans(vecs, 4, 0, 8)
	seen := map[int]bool{}
	for _, c := range assign {
		if seen[c] {
			t.Fatalf("k=n assignment reuses cluster %d: %v", c, assign)
		}
		seen[c] = true
	}

	same := [][]float64{{1, 1}, {1, 1}, {1, 1}}
	assign = kmeans(same, 2, 9, 8)
	if len(assign) != 3 {
		t.Fatalf("got %d assignments", len(assign))
	}
}

// TestMedoids: the representative of each cluster is its member closest
// to the cluster mean, and counts tally the membership.
func TestMedoids(t *testing.T) {
	vecs := [][]float64{{0}, {1}, {2}, {10}, {11}}
	assign := []int{0, 0, 0, 1, 1}
	rep, count := medoids(vecs, assign, 2)
	if rep[0] != 1 { // mean 1.0 → member {1}
		t.Errorf("cluster 0 medoid %d, want 1", rep[0])
	}
	if rep[1] != 3 { // mean 10.5 → tie broken toward index 3
		t.Errorf("cluster 1 medoid %d, want 3", rep[1])
	}
	if count[0] != 3 || count[1] != 2 {
		t.Errorf("counts %v, want [3 2]", count)
	}
}
