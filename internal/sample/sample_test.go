package sample

import (
	"reflect"
	"strings"
	"testing"

	"itpsim/internal/arch"
	"itpsim/internal/config"
	"itpsim/internal/metrics"
	"itpsim/internal/shard"
)

func testConfig(k int) Config {
	return Config{
		System:  config.Default(),
		Phases:  k,
		Window:  1000,
		Warmup:  2000,
		Measure: 8000,
	}
}

func TestConfigValidate(t *testing.T) {
	if err := testConfig(4).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	cases := []struct {
		mut  func(*Config)
		want string
	}{
		{func(c *Config) { c.Phases = 0 }, "phases"},
		{func(c *Config) { c.Measure = 0 }, "nothing to measure"},
		{func(c *Config) { c.System.Cores = 2 }, "multi-core"},
		{func(c *Config) { c.Window = 0 }, "window"},
		{func(c *Config) { c.Measure = 8500 }, "not a multiple"},
		{func(c *Config) { c.Warmup = 2500 }, "not a multiple"},
	}
	for _, tc := range cases {
		cfg := testConfig(4)
		tc.mut(&cfg)
		if err := cfg.Validate(); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("mutated config accepted or wrong error: %v (want %q)", err, tc.want)
		}
	}
	// K=1 is exempt from interval alignment: it has no intervals.
	one := testConfig(1)
	one.Window = 0
	one.Warmup = 2500
	if err := one.Validate(); err != nil {
		t.Errorf("K=1 config rejected: %v", err)
	}
}

// profileFor fabricates a profile window series with the given per-window
// IPCs over testConfig geometry (warmup windows included, as a real
// profile would have them).
func profileFor(cfg Config, ipc []float64) []metrics.WindowRecord {
	var recs []metrics.WindowRecord
	total := cfg.Warmup + cfg.Measure
	for r, i := cfg.Window, 0; r <= total; r += cfg.Window {
		rec := metrics.WindowRecord{
			Retired:  arch.Instr(r),
			Instr:    arch.Instr(cfg.Window),
			Counters: map[string]uint64{},
		}
		if r > cfg.Warmup {
			rec.IPC = ipc[i]
			// Give the miss features the same phase structure as the IPC.
			rec.Counters["l2c.demand_miss"] = uint64(1000 * ipc[i])
			i++
		}
		recs = append(recs, rec)
	}
	return recs
}

// TestBuildPlanPhases: a profile with two clearly distinct phases yields
// a plan whose representatives come one from each phase, with weights
// equal to the phase sizes and totalling the interval count.
func TestBuildPlanPhases(t *testing.T) {
	cfg := testConfig(2)
	// Intervals 0-3 fast phase, 4-7 slow phase.
	plan, err := BuildPlan(cfg, profileFor(cfg, []float64{2, 2, 2, 2, 0.5, 0.5, 0.5, 0.5}))
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Reps) != 2 {
		t.Fatalf("got %d representatives, want 2: %+v", len(plan.Reps), plan.Reps)
	}
	if plan.Reps[0].Window >= 4 || plan.Reps[1].Window < 4 {
		t.Errorf("representatives %+v do not come one from each phase", plan.Reps)
	}
	if plan.Reps[0].Weight != 4 || plan.Reps[1].Weight != 4 {
		t.Errorf("weights %+v, want 4 and 4", plan.Reps)
	}
	if plan.Reps[0].Window >= plan.Reps[1].Window {
		t.Errorf("representatives not in stream order: %+v", plan.Reps)
	}
}

// TestBuildPlanDeterministic: planning is a pure function of (config,
// profile).
func TestBuildPlanDeterministic(t *testing.T) {
	cfg := testConfig(3)
	ipc := []float64{2, 1.9, 0.5, 0.55, 1.2, 1.25, 2.1, 0.5}
	a, err := BuildPlan(cfg, profileFor(cfg, ipc))
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildPlan(cfg, profileFor(cfg, ipc))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same profile produced different plans:\n%+v\n%+v", a.Reps, b.Reps)
	}
}

// TestBuildPlanClampsK: more phases than intervals clamps to one
// representative per interval, each with weight 1.
func TestBuildPlanClampsK(t *testing.T) {
	cfg := testConfig(64)
	plan, err := BuildPlan(cfg, profileFor(cfg, []float64{2, 1.8, 1.6, 1.4, 1.2, 1, 0.8, 0.6}))
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Reps) != 8 {
		t.Fatalf("got %d representatives, want 8", len(plan.Reps))
	}
	for i, rep := range plan.Reps {
		if rep.Weight != 1 || rep.Window != uint64(i) {
			t.Errorf("rep %d = %+v, want window %d weight 1", i, rep, i)
		}
	}
}

// TestBuildPlanRejectsMismatchedProfile: a profile taken with a different
// geometry must be rejected, not silently misclassified.
func TestBuildPlanRejectsMismatchedProfile(t *testing.T) {
	cfg := testConfig(2)
	short := profileFor(cfg, []float64{2, 2, 2, 2, 1, 1, 1, 1})[:6]
	if _, err := BuildPlan(cfg, short); err == nil || !strings.Contains(err.Error(), "measured windows") {
		t.Errorf("short profile accepted: %v", err)
	}
	wrong := profileFor(cfg, []float64{2, 2, 2, 2, 1, 1, 1, 1})
	wrong[4].Instr = 500
	if _, err := BuildPlan(cfg, wrong); err == nil || !strings.Contains(err.Error(), "different window") {
		t.Errorf("wrong-window profile accepted: %v", err)
	}
}

// TestPlanSegments: representative w maps onto the shard segment whose
// measured region is exactly the serial run's interval w, with the
// warmup split into its functional and detailed parts.
func TestPlanSegments(t *testing.T) {
	cfg := testConfig(2)
	cfg.DetailWarmup = 500
	plan := &Plan{Config: cfg, Reps: []Rep{{Phase: 1, Window: 2, Weight: 5}, {Phase: 0, Window: 6, Weight: 3}}}
	segs := plan.Segments()
	want := []shard.Segment{
		{Index: 0, Offset: 2000, FuncWarmup: 1500, Warmup: 500, Measure: 1000},
		{Index: 1, Offset: 6000, FuncWarmup: 1500, Warmup: 500, Measure: 1000},
	}
	if !reflect.DeepEqual(segs, want) {
		t.Errorf("segments %+v, want %+v", segs, want)
	}

	// Fully detailed warmup when DetailWarmup is unset.
	cfg.DetailWarmup = 0
	plan.Config = cfg
	if seg := plan.Segments()[0]; seg.FuncWarmup != 0 || seg.Warmup != 2000 {
		t.Errorf("default warmup split %d+%d, want 0+2000", seg.FuncWarmup, seg.Warmup)
	}

	// K=1: the serial segment.
	one := testConfig(1)
	if seg := (&Plan{Config: one, Reps: []Rep{{Weight: 1}}}).Segments()[0]; seg.Offset != 0 || seg.Measure != one.Measure {
		t.Errorf("K=1 segment %+v is not the serial run", seg)
	}
}
