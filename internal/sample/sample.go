// Package sample implements SimPoint-style representative sampling: a
// cheap profiling pre-pass splits a long run into fixed-length intervals
// of retired instructions, clusters the intervals' architecture-metric
// vectors into K phases with a deterministic seeded k-means, and then
// simulates ONE representative interval per phase in detail — each as a
// supervised internal/shard segment, in parallel, with most of its
// warmup replayed functionally — reconstructing the full-run statistics
// as the phase-occupancy-weighted sum of the representatives.
//
// The profile is taken once per workload at a fixed baseline
// configuration (all replacement policies forced to LRU) so one profile
// serves every policy point of a sweep; phase structure is a property of
// the workload, not of the policy under study. Accuracy bounds per
// geometry are declared by the differential battery (TestSampledEquivalence,
// DESIGN.md §14). The degenerate K=1 plan runs the whole measured region
// as one fully detailed segment and is bit-exact with the serial run,
// beacon chain included.
package sample

import (
	"fmt"
	"math"

	"itpsim/internal/config"
	"itpsim/internal/metrics"
	"itpsim/internal/shard"
)

// featureCounters are the per-window counter deltas that, with IPC, form
// the phase-classification feature vector. All are registered by
// sim.InstrumentMetrics and listed in metrics.RequiredStats.
var featureCounters = []string{
	"l1i.demand_miss",
	"stlb.demand_miss.instr",
	"stlb.demand_miss.data",
	"l2c.demand_miss",
	"branch.mispredict",
}

// Config describes one sampled simulation.
type Config struct {
	// System is the machine configuration the representatives run (the
	// policy point under study). Single-core only, like sharding.
	System config.SystemConfig
	// Phases is K, the number of phases (and detailed representative
	// intervals). 1 selects the degenerate exact plan: one fully detailed
	// segment over the whole measured region, no profile needed.
	Phases int
	// Window is the interval length in retired instructions; the measured
	// region splits into Measure/Window candidate intervals.
	Window uint64
	// Warmup is the per-representative warmup prefix in instructions
	// (total: functional + detailed).
	Warmup uint64
	// DetailWarmup is the detailed (cycle-accurate) suffix of Warmup; the
	// remainder is replayed functionally at generator speed. 0 selects a
	// fully detailed warmup.
	DetailWarmup uint64
	// Measure is the measured region length in instructions.
	Measure uint64
	// BeaconInterval and Audit arm per-segment state beacons and the
	// structural invariant auditor, as in shard.Config.
	BeaconInterval uint64
	Audit          bool
	// Seed seeds the k-means initialisation (0 is a valid seed).
	Seed uint64
	// Iters bounds the k-means Lloyd iterations (0 selects 32).
	Iters int
}

func (c Config) detailWarmup() uint64 {
	if c.DetailWarmup == 0 || c.DetailWarmup > c.Warmup {
		return c.Warmup
	}
	return c.DetailWarmup
}

func (c Config) funcWarmup() uint64 { return c.Warmup - c.detailWarmup() }

func (c Config) iters() int {
	if c.Iters <= 0 {
		return 32
	}
	return c.Iters
}

// Validate rejects nonsensical sampling configurations.
func (c Config) Validate() error {
	if c.Phases < 1 {
		return fmt.Errorf("sample: %d phases", c.Phases)
	}
	if c.Measure == 0 {
		return fmt.Errorf("sample: nothing to measure")
	}
	if c.System.Cores > 1 {
		return fmt.Errorf("sample: multi-core runs (Cores=%d) must run whole; sampling splits a single stream", c.System.Cores)
	}
	if c.Phases == 1 {
		return nil // the exact plan has no interval structure to align
	}
	if c.Window == 0 {
		return fmt.Errorf("sample: K>1 needs a window size")
	}
	if c.Measure%c.Window != 0 {
		return fmt.Errorf("sample: measure %d is not a multiple of the %d-instruction window", c.Measure, c.Window)
	}
	if c.Warmup%c.Window != 0 {
		// Profile windows tile from instruction 0; a warmup that is not a
		// window multiple would put the warmup/measure boundary inside a
		// window and misalign every interval after it.
		return fmt.Errorf("sample: warmup %d is not a multiple of the %d-instruction window", c.Warmup, c.Window)
	}
	return nil
}

// Rep is one representative interval of the plan.
type Rep struct {
	// Phase is the cluster this representative stands for.
	Phase int `json:"phase"`
	// Window is the interval's index within the measured region (interval
	// w covers serial instructions [Warmup+w·Window, Warmup+(w+1)·Window)).
	Window uint64 `json:"window"`
	// Weight is the phase occupancy: how many measured intervals the
	// cluster holds. Weighted stitching multiplies this representative's
	// counters by Weight, and the weights sum to Measure/Window.
	Weight uint64 `json:"weight"`
}

// Plan is a sampled-run plan: which intervals run in detail and what each
// one's statistics count for.
type Plan struct {
	Config Config
	// Reps is ordered by ascending Window (stream offset order).
	Reps []Rep
}

// Segments maps the plan onto shard segments: representative w consumes
// stream [w·Window, w·Window+Warmup+Window) and measures its last Window
// instructions — exactly the serial run's interval w, approximated only
// through the warmup. The K=1 plan is the serial run itself.
func (p *Plan) Segments() []shard.Segment {
	c := p.Config
	if c.Phases == 1 {
		return []shard.Segment{{
			Index:      0,
			Offset:     0,
			FuncWarmup: c.funcWarmup(),
			Warmup:     c.detailWarmup(),
			Measure:    c.Measure,
		}}
	}
	segs := make([]shard.Segment, len(p.Reps))
	for i, rep := range p.Reps {
		segs[i] = shard.Segment{
			Index:      i,
			Offset:     rep.Window * c.Window,
			FuncWarmup: c.funcWarmup(),
			Warmup:     c.detailWarmup(),
			Measure:    c.Window,
		}
	}
	return segs
}

// BuildPlan classifies a profile's measured intervals into phases and
// picks one representative per phase. recs is the profiling pre-pass's
// window series (window size Config.Window, from instruction 0); only
// windows past the warmup participate. Pure planning — no simulation —
// so plans are unit-testable and replayable from journaled profiles.
func BuildPlan(cfg Config, recs []metrics.WindowRecord) (*Plan, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Phases == 1 {
		return &Plan{Config: cfg, Reps: []Rep{{Phase: 0, Window: 0, Weight: 1}}}, nil
	}
	vecs, base, err := features(cfg, recs)
	if err != nil {
		return nil, err
	}
	k := cfg.Phases
	if k > len(vecs) {
		k = len(vecs)
	}
	assign := kmeans(vecs, k, cfg.Seed, cfg.iters())
	reps, counts := medoids(vecs, assign, k)

	plan := &Plan{Config: cfg}
	for c, r := range reps {
		if r < 0 {
			continue // empty phase: its weight is zero, nothing to run
		}
		plan.Reps = append(plan.Reps, Rep{Phase: c, Window: base[r], Weight: uint64(counts[c])})
	}
	// Stream-offset order, so segment positioning is one ascending pass.
	for i := 1; i < len(plan.Reps); i++ {
		for j := i; j > 0 && plan.Reps[j].Window < plan.Reps[j-1].Window; j-- {
			plan.Reps[j], plan.Reps[j-1] = plan.Reps[j-1], plan.Reps[j]
		}
	}
	var total uint64
	for _, rep := range plan.Reps {
		total += rep.Weight
	}
	if want := cfg.Measure / cfg.Window; total != want {
		return nil, fmt.Errorf("sample: phase weights cover %d of %d intervals", total, want)
	}
	return plan, nil
}

// features turns the profile's measured windows into z-normalised metric
// vectors. base[i] is the measured-region interval index of vector i.
func features(cfg Config, recs []metrics.WindowRecord) (vecs [][]float64, base []uint64, err error) {
	want := cfg.Measure / cfg.Window
	for _, rec := range recs {
		if uint64(rec.Retired) <= cfg.Warmup {
			continue
		}
		w := (uint64(rec.Retired) - cfg.Warmup - 1) / cfg.Window
		if w >= want {
			break
		}
		if uint64(rec.Instr) != cfg.Window {
			return nil, nil, fmt.Errorf("sample: profile window at %d spans %d instructions, want %d (profile taken with a different window?)", rec.Retired, rec.Instr, cfg.Window)
		}
		perKI := 1000 / float64(rec.Instr)
		v := make([]float64, 1+len(featureCounters))
		v[0] = rec.IPC
		for i, name := range featureCounters {
			v[i+1] = float64(rec.Counters[name]) * perKI
		}
		vecs = append(vecs, v)
		base = append(base, w)
	}
	if uint64(len(vecs)) != want {
		return nil, nil, fmt.Errorf("sample: profile has %d measured windows, want %d (profile geometry mismatch)", len(vecs), want)
	}
	// z-normalise each dimension so no single counter's scale dominates
	// the distance metric.
	dim := len(vecs[0])
	for d := 0; d < dim; d++ {
		var mean float64
		for _, v := range vecs {
			mean += v[d]
		}
		mean /= float64(len(vecs))
		var variance float64
		for _, v := range vecs {
			t := v[d] - mean
			variance += t * t
		}
		variance /= float64(len(vecs))
		if variance == 0 {
			for _, v := range vecs {
				v[d] = 0
			}
			continue
		}
		inv := 1 / math.Sqrt(variance)
		for _, v := range vecs {
			v[d] = (v[d] - mean) * inv
		}
	}
	return vecs, base, nil
}
