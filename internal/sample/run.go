package sample

import (
	"fmt"

	"itpsim/internal/harness"
	"itpsim/internal/shard"
	"itpsim/internal/stats"
)

// RepResult is one representative's contribution to a sampled run.
type RepResult struct {
	Rep      Rep
	Segment  shard.Segment
	Stats    *stats.Sim
	Beacon   *harness.BeaconStamp
	Attempts int
	Cached   bool
}

// Result is a stitched sampled run.
type Result struct {
	Plan *Plan
	// Stats is the phase-occupancy-weighted sum of the representatives'
	// measured statistics: every counter of representative r is scaled by
	// r.Weight, so totals correspond to the full measured region and
	// ratio metrics (IPC, MPKI, hit rates) recompute as weighted
	// estimates of the full run's.
	Stats *stats.Sim
	// IPC is recomputed from the weighted totals.
	IPC float64
	// Reps holds the per-representative results in stream order.
	Reps []RepResult
}

// Beacon returns the run's deterministic-state fingerprint when the plan
// makes one meaningful: only the K=1 plan with fully detailed warmup
// simulates the exact serial machine, so only it has a serial-comparable
// chain.
func (r *Result) Beacon() *harness.BeaconStamp {
	if r.Plan.Config.Phases == 1 && len(r.Reps) == 1 && r.Reps[0].Segment.FuncWarmup == 0 {
		return r.Reps[0].Beacon
	}
	return nil
}

// shardConfig maps the sampling configuration onto the shard job engine.
// Representatives never sample windows themselves (the plan already owns
// the window structure), so MetricsWindow stays 0 and no alignment rule
// binds the warmup split.
func (p *Plan) shardConfig() shard.Config {
	return shard.Config{
		System:         p.Config.System,
		BeaconInterval: p.Config.BeaconInterval,
		Audit:          p.Config.Audit,
	}
}

// Jobs builds one supervised harness job per representative, keyed under
// baseKey|sampleK/w… so sampled checkpoints never collide with sharded
// ones for the same workload and configuration.
func (p *Plan) Jobs(baseKey string, src shard.Source, ix *shard.Index) ([]harness.Job[*shard.Payload], error) {
	if err := p.Config.Validate(); err != nil {
		return nil, err
	}
	key := fmt.Sprintf("%s|sample%d/w%d", baseKey, p.Config.Phases, p.Config.Window)
	return shard.SegmentJobs(p.shardConfig(), p.Segments(), key, src, ix)
}

// Stitch combines per-representative outcomes (indexed like Jobs) into
// one Result via weighted summation, re-verifying each payload's segment
// against the plan so stale checkpoints are rejected rather than summed.
func (p *Plan) Stitch(outs []harness.Outcome[*shard.Payload]) (*Result, error) {
	segs := p.Segments()
	if len(outs) != len(segs) {
		return nil, fmt.Errorf("sample: %d outcomes for a %d-representative plan", len(outs), len(segs))
	}
	res := &Result{
		Plan:  p,
		Stats: stats.NewSim(),
		Reps:  make([]RepResult, len(segs)),
	}
	for i, out := range outs {
		if out.Err != nil {
			return nil, fmt.Errorf("sample: representative %d (%s): %w", i, out.Key, out.Err)
		}
		pl := out.Result
		if pl == nil || pl.Stats == nil {
			return nil, fmt.Errorf("sample: representative %d (%s): empty payload", i, out.Key)
		}
		if pl.Segment != segs[i] {
			return nil, fmt.Errorf("sample: representative %d: payload segment %+v does not match plan segment %+v (stale checkpoint?)", i, pl.Segment, segs[i])
		}
		res.Stats.AddScaled(pl.Stats, p.Reps[i].Weight)
		res.Reps[i] = RepResult{
			Rep:      p.Reps[i],
			Segment:  pl.Segment,
			Stats:    pl.Stats,
			Beacon:   out.Beacon,
			Attempts: out.Attempts,
			Cached:   out.Cached,
		}
	}
	res.IPC = res.Stats.IPC()
	return res, nil
}

// Run executes one sampled simulation end to end: profile (through the
// cache, skipped for K=1), plan, representative jobs under the harness
// supervisor, weighted stitch. profiles may be nil (a throwaway cache);
// ix may be nil (no cross-run position snapshots).
func Run(cfg Config, baseKey string, src shard.Source, ix *shard.Index, profiles *Profiles, opts harness.Options) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var plan *Plan
	if cfg.Phases == 1 {
		p, err := BuildPlan(cfg, nil)
		if err != nil {
			return nil, err
		}
		plan = p
	} else {
		if profiles == nil {
			profiles = NewProfiles()
		}
		prof, err := profiles.Get(cfg, src, nil)
		if err != nil {
			return nil, err
		}
		p, err := BuildPlan(cfg, prof)
		if err != nil {
			return nil, err
		}
		plan = p
	}
	jobs, err := plan.Jobs(baseKey, src, ix)
	if err != nil {
		return nil, err
	}
	if opts.Parallelism <= 0 {
		opts.Parallelism = len(jobs)
	}
	outs, err := harness.RunAll(opts, jobs)
	if err != nil {
		return nil, err
	}
	return plan.Stitch(outs)
}
