// Package audit is the runtime invariant auditor: a registry of
// per-component structural checks (LRU stack well-formedness, MSHR leak
// detection, ring bounds, TLB↔page-table coherence, protection-bit
// consistency) that can run periodically inside a simulation or as a
// post-mortem over a killed run's final state. A violation means the
// simulator's data structures are corrupt — the run's statistics are
// garbage from that point on — so violations surface as structured,
// diagnosable errors instead of silently poisoning downstream sweeps.
//
// The package is deliberately dependency-free (it imports only fmt and
// strings): every simulator component can implement Checkable without an
// import cycle, and the deterministic-core rules of itpvet's
// simdeterminism analyzer apply to it in full.
package audit

import (
	"fmt"
	"strings"
)

// Violation is one failed structural invariant.
type Violation struct {
	// Component names the structure that failed ("stlb", "l2c", ...).
	Component string
	// Rule names the invariant ("stack-permutation", "mshr-leak", ...).
	Rule string
	// Detail locates and describes the corruption.
	Detail string
}

// String formats the violation compactly.
func (v Violation) String() string {
	return fmt.Sprintf("%s/%s: %s", v.Component, v.Rule, v.Detail)
}

// Error is the structured verdict of a failed audit pass: every violation
// found, stamped with the retired-instruction count the pass ran at. It
// is deterministic for a seeded run, so the supervising harness treats it
// as permanent (non-retryable) — re-running would corrupt identically.
type Error struct {
	// Retired is the retired-instruction count at the audit boundary.
	Retired uint64
	// Violations holds every invariant that failed, in registration
	// order.
	Violations []Violation
}

// Error implements error.
func (e *Error) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "audit: %d invariant violation(s) at retired=%d:", len(e.Violations), e.Retired)
	for _, v := range e.Violations {
		b.WriteString("\n  ")
		b.WriteString(v.String())
	}
	return b.String()
}

// Report collects violations during one audit pass. Component checks
// receive it through Checkable.AuditState and call Violatef for each
// failed invariant; the auditor stamps the component name.
type Report struct {
	component  string
	violations []Violation

	// Now is the current simulated cycle, for checks that judge in-flight
	// bookkeeping (MSHR leak detection) against the clock.
	Now uint64
	// MaxViolations caps collection so a totally corrupt structure
	// produces a readable report instead of one line per set (0 means
	// DefaultMaxViolations).
	MaxViolations int
}

// DefaultMaxViolations bounds one pass's report.
const DefaultMaxViolations = 32

// setComponent names the component whose checks run next.
func (r *Report) setComponent(name string) { r.component = name }

// Violatef records one failed invariant against the current component.
func (r *Report) Violatef(rule, format string, args ...any) {
	max := r.MaxViolations
	if max <= 0 {
		max = DefaultMaxViolations
	}
	if len(r.violations) >= max {
		return
	}
	r.violations = append(r.violations, Violation{
		Component: r.component,
		Rule:      rule,
		Detail:    fmt.Sprintf(format, args...),
	})
}

// Clean reports whether the pass found no violations.
func (r *Report) Clean() bool { return len(r.violations) == 0 }

// Violations returns the collected violations.
func (r *Report) Violations() []Violation { return r.violations }

// Err converts the pass into its verdict: nil when clean, an *Error
// carrying every violation otherwise.
func (r *Report) Err(retired uint64) error {
	if r.Clean() {
		return nil
	}
	return &Error{Retired: retired, Violations: r.violations}
}

// Checkable is implemented by components that can audit their own
// structural invariants. Implementations must only read state (an audit
// must never perturb the simulation) and must be callable from the
// simulation goroutine at an instruction boundary.
type Checkable interface {
	AuditState(r *Report)
}

// Auditor runs a registered set of named component checks as one pass.
type Auditor struct {
	comps []namedCheck
}

type namedCheck struct {
	name string
	c    Checkable
}

// Register adds a component check; passes run checks in registration
// order, so reports are deterministic.
func (a *Auditor) Register(name string, c Checkable) {
	a.comps = append(a.comps, namedCheck{name: name, c: c})
}

// Components returns the registered component names, in order.
func (a *Auditor) Components() []string {
	names := make([]string, len(a.comps))
	for i, nc := range a.comps {
		names[i] = nc.name
	}
	return names
}

// Run executes one audit pass at the given retired-instruction count and
// simulated cycle. It returns nil when every invariant holds, or an
// *Error aggregating the violations.
func (a *Auditor) Run(retired, now uint64) error {
	r := &Report{Now: now}
	for _, nc := range a.comps {
		r.setComponent(nc.name)
		nc.c.AuditState(r)
	}
	return r.Err(retired)
}
