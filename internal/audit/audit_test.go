package audit

import (
	"errors"
	"strings"
	"testing"
)

// fakeComponent reports a fixed set of violations per pass.
type fakeComponent struct {
	rules []string
	calls int
}

func (f *fakeComponent) AuditState(r *Report) {
	f.calls++
	for _, rule := range f.rules {
		r.Violatef(rule, "detail for %s", rule)
	}
}

func TestAuditorCleanPass(t *testing.T) {
	a := &Auditor{}
	c1 := &fakeComponent{}
	c2 := &fakeComponent{}
	a.Register("alpha", c1)
	a.Register("beta", c2)
	if err := a.Run(1000, 5000); err != nil {
		t.Fatalf("clean components should pass: %v", err)
	}
	if c1.calls != 1 || c2.calls != 1 {
		t.Errorf("each component should be checked once per pass, got %d/%d", c1.calls, c2.calls)
	}
	if got := a.Components(); len(got) != 2 || got[0] != "alpha" || got[1] != "beta" {
		t.Errorf("Components() = %v", got)
	}
}

func TestAuditorCollectsViolationsInOrder(t *testing.T) {
	a := &Auditor{}
	a.Register("good", &fakeComponent{})
	a.Register("bad", &fakeComponent{rules: []string{"rule-a", "rule-b"}})
	a.Register("worse", &fakeComponent{rules: []string{"rule-c"}})
	err := a.Run(42, 99)
	var ae *Error
	if !errors.As(err, &ae) {
		t.Fatalf("want *Error, got %T: %v", err, err)
	}
	if ae.Retired != 42 {
		t.Errorf("Retired = %d", ae.Retired)
	}
	want := []Violation{
		{Component: "bad", Rule: "rule-a", Detail: "detail for rule-a"},
		{Component: "bad", Rule: "rule-b", Detail: "detail for rule-b"},
		{Component: "worse", Rule: "rule-c", Detail: "detail for rule-c"},
	}
	if len(ae.Violations) != len(want) {
		t.Fatalf("got %d violations: %v", len(ae.Violations), ae.Violations)
	}
	for i := range want {
		if ae.Violations[i] != want[i] {
			t.Errorf("violation %d = %+v, want %+v", i, ae.Violations[i], want[i])
		}
	}
	msg := ae.Error()
	for _, frag := range []string{"3 invariant violation(s)", "retired=42", "bad/rule-a", "worse/rule-c"} {
		if !strings.Contains(msg, frag) {
			t.Errorf("error text missing %q: %s", frag, msg)
		}
	}
}

// chatty violates once per call to Violatef, n times.
type chatty struct{ n int }

func (c *chatty) AuditState(r *Report) {
	for i := 0; i < c.n; i++ {
		r.Violatef("noisy", "violation %d", i)
	}
}

func TestReportCapsViolations(t *testing.T) {
	a := &Auditor{}
	a.Register("corrupt", &chatty{n: 10 * DefaultMaxViolations})
	err := a.Run(0, 0)
	var ae *Error
	if !errors.As(err, &ae) {
		t.Fatal(err)
	}
	if len(ae.Violations) != DefaultMaxViolations {
		t.Errorf("report should cap at %d violations, got %d", DefaultMaxViolations, len(ae.Violations))
	}
}

func TestReportCustomCap(t *testing.T) {
	r := &Report{MaxViolations: 2}
	r.setComponent("x")
	for i := 0; i < 5; i++ {
		r.Violatef("r", "v%d", i)
	}
	if len(r.Violations()) != 2 {
		t.Errorf("custom cap: got %d", len(r.Violations()))
	}
	if r.Clean() {
		t.Error("Clean() with violations present")
	}
	if r.Err(7) == nil {
		t.Error("Err() should be non-nil")
	}
}

func TestReportCleanErrNil(t *testing.T) {
	r := &Report{}
	if !r.Clean() || r.Err(0) != nil {
		t.Error("empty report should be clean with nil Err")
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Component: "stlb", Rule: "stack-permutation", Detail: "set 3"}
	if got := v.String(); got != "stlb/stack-permutation: set 3" {
		t.Errorf("String() = %q", got)
	}
}

// TestReportNowVisible proves checks see the audit clock (the MSHR leak
// rule depends on it).
func TestReportNowVisible(t *testing.T) {
	a := &Auditor{}
	var seen uint64
	a.Register("clocked", checkFunc(func(r *Report) { seen = r.Now }))
	if err := a.Run(10, 777); err != nil {
		t.Fatal(err)
	}
	if seen != 777 {
		t.Errorf("component saw Now=%d, want 777", seen)
	}
}

// checkFunc adapts a func to Checkable.
type checkFunc func(r *Report)

func (f checkFunc) AuditState(r *Report) { f(r) }
