package plot

import (
	"bytes"
	"strings"
	"testing"
)

func demoChart() *Chart {
	return &Chart{
		Title:  "demo",
		YLabel: "% improvement",
		Labels: []string{"w1", "w2"},
		Series: []Series{
			{Name: "iTP", Values: []float64{1.5, -0.5}},
			{Name: "iTP+xPTP", Values: []float64{8.0, 6.5}},
		},
	}
}

func TestRenderProducesValidSVG(t *testing.T) {
	var buf bytes.Buffer
	if err := demoChart().Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"<svg", "</svg>", "demo", "% improvement", "iTP+xPTP", "<rect"} {
		if !strings.Contains(out, frag) {
			t.Errorf("SVG missing %q", frag)
		}
	}
	if strings.Count(out, "<rect") < 5 { // background + 4 bars
		t.Error("expected one rect per bar")
	}
}

func TestRenderEscapesText(t *testing.T) {
	c := demoChart()
	c.Title = `<script>"x"&y</script>`
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "<script>") {
		t.Error("title not escaped")
	}
}

func TestRenderRejectsEmptyAndRagged(t *testing.T) {
	var buf bytes.Buffer
	if err := (&Chart{}).Render(&buf); err == nil {
		t.Error("empty chart should error")
	}
	c := demoChart()
	c.Series[0].Values = c.Series[0].Values[:1]
	if err := c.Render(&buf); err == nil {
		t.Error("ragged series should error")
	}
}

func TestNegativeValuesDrawBelowZero(t *testing.T) {
	c := &Chart{
		Title: "neg", YLabel: "y",
		Labels: []string{"a"},
		Series: []Series{{Name: "s", Values: []float64{-3}}},
	}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	// Bound should extend below zero: a -5 or -3 tick appears.
	if !strings.Contains(buf.String(), "-") {
		t.Error("negative axis missing")
	}
}

func TestNiceCeil(t *testing.T) {
	cases := map[float64]float64{0.7: 1, 1: 1, 3: 5, 18: 20, 23: 25, 80: 100, 0: 1}
	for in, want := range cases {
		if got := niceCeil(in); got != want {
			t.Errorf("niceCeil(%v) = %v, want %v", in, got, want)
		}
	}
}

func TestFromRows(t *testing.T) {
	rows := []RowData{
		{Series: "a", Label: "x", Value: 1},
		{Series: "a", Label: "y", Value: 2},
		{Series: "b", Label: "x", Value: 3},
		{Series: "b", Label: "SKIP", Value: 99},
	}
	c := FromRows("t", "y", rows, "SKIP")
	if len(c.Labels) != 2 || len(c.Series) != 2 {
		t.Fatalf("chart shape wrong: %d labels, %d series", len(c.Labels), len(c.Series))
	}
	if c.Series[0].Values[0] != 1 || c.Series[1].Values[0] != 3 {
		t.Errorf("values misplaced: %+v", c.Series)
	}
	// Missing combinations default to zero.
	if c.Series[1].Values[1] != 0 {
		t.Error("missing combination should be zero")
	}
}

func TestSortSeries(t *testing.T) {
	c := demoChart()
	c.Series[0].Name = "zzz"
	c.SortSeries()
	if c.Series[0].Name != "iTP+xPTP" {
		t.Error("series not sorted")
	}
}
