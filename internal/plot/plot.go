// Package plot renders experiment results as standalone SVG bar charts —
// the artifact-style "gen_plots" step, with the standard library only.
// Each figure's rows become grouped bars (one group per label, one colour
// per series).
package plot

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Series is one named data series.
type Series struct {
	Name   string
	Values []float64 // aligned with Labels
}

// Chart is a grouped bar chart.
type Chart struct {
	Title  string
	YLabel string
	Labels []string
	Series []Series
}

// palette holds distinguishable fill colours.
var palette = []string{
	"#4878d0", "#ee854a", "#6acc64", "#d65f5f",
	"#956cb4", "#8c613c", "#dc7ec0", "#797979",
	"#d5bb67", "#82c6e2",
}

const (
	chartWidth   = 900
	chartHeight  = 420
	marginLeft   = 70
	marginRight  = 20
	marginTop    = 50
	marginBottom = 90
)

// esc escapes text for SVG.
func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// niceCeil rounds x up to a pleasant tick value.
func niceCeil(x float64) float64 {
	if x <= 0 {
		return 1
	}
	mag := math.Pow(10, math.Floor(math.Log10(x)))
	for _, m := range []float64{1, 2, 2.5, 5, 10} {
		if m*mag >= x {
			return m * mag
		}
	}
	return 10 * mag
}

// bounds returns the y-axis range covering all values (and zero).
func (c *Chart) bounds() (lo, hi float64) {
	lo, hi = 0, 0
	for _, s := range c.Series {
		for _, v := range s.Values {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if hi == 0 && lo == 0 {
		hi = 1
	}
	if hi > 0 {
		hi = niceCeil(hi)
	}
	if lo < 0 {
		lo = -niceCeil(-lo)
	}
	return lo, hi
}

// Render writes the chart as a complete SVG document.
func (c *Chart) Render(w io.Writer) error {
	if len(c.Labels) == 0 || len(c.Series) == 0 {
		return fmt.Errorf("plot: chart needs labels and series")
	}
	for _, s := range c.Series {
		if len(s.Values) != len(c.Labels) {
			return fmt.Errorf("plot: series %q has %d values for %d labels", s.Name, len(s.Values), len(c.Labels))
		}
	}

	lo, hi := c.bounds()
	plotW := float64(chartWidth - marginLeft - marginRight)
	plotH := float64(chartHeight - marginTop - marginBottom)
	yOf := func(v float64) float64 {
		return marginTop + plotH*(1-(v-lo)/(hi-lo))
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif">`+"\n",
		chartWidth, chartHeight)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", chartWidth, chartHeight)
	fmt.Fprintf(&b, `<text x="%d" y="24" font-size="16" font-weight="bold">%s</text>`+"\n",
		marginLeft, esc(c.Title))
	fmt.Fprintf(&b, `<text x="14" y="%f" font-size="11" transform="rotate(-90 14 %f)" text-anchor="middle">%s</text>`+"\n",
		marginTop+plotH/2, marginTop+plotH/2, esc(c.YLabel))

	// Gridlines and y ticks.
	const ticks = 5
	for i := 0; i <= ticks; i++ {
		v := lo + (hi-lo)*float64(i)/ticks
		y := yOf(v)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`+"\n",
			marginLeft, y, chartWidth-marginRight, y)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-size="10" text-anchor="end">%.3g</text>`+"\n",
			marginLeft-6, y+3, v)
	}
	// Zero line.
	fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#444"/>`+"\n",
		marginLeft, yOf(0), chartWidth-marginRight, yOf(0))

	// Bars.
	groupW := plotW / float64(len(c.Labels))
	barW := groupW * 0.8 / float64(len(c.Series))
	for gi, label := range c.Labels {
		gx := marginLeft + float64(gi)*groupW + groupW*0.1
		for si, s := range c.Series {
			v := s.Values[gi]
			y0, y1 := yOf(0), yOf(v)
			top, h := y1, y0-y1
			if v < 0 {
				top, h = y0, y1-y0
			}
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"><title>%s / %s: %.4g</title></rect>`+"\n",
				gx+float64(si)*barW, top, barW*0.95, h,
				palette[si%len(palette)], esc(s.Name), esc(label), v)
		}
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="10" text-anchor="end" transform="rotate(-35 %.1f %d)">%s</text>`+"\n",
			gx+groupW*0.4, chartHeight-marginBottom+16, gx+groupW*0.4, chartHeight-marginBottom+16, esc(label))
	}

	// Legend.
	lx := float64(marginLeft)
	ly := float64(chartHeight - 22)
	for si, s := range c.Series {
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="10" height="10" fill="%s"/>`+"\n",
			lx, ly, palette[si%len(palette)])
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="11">%s</text>`+"\n", lx+14, ly+9, esc(s.Name))
		lx += 18 + float64(9*len(s.Name))
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// FromRows groups (series, label, value) tuples into a Chart, preserving
// first-appearance order of series and labels. Rows whose label is in
// skipLabels (e.g. per-workload detail when only aggregates are wanted)
// are dropped.
func FromRows(title, ylabel string, rows []RowData, skipLabels ...string) *Chart {
	skip := map[string]bool{}
	for _, s := range skipLabels {
		skip[s] = true
	}
	c := &Chart{Title: title, YLabel: ylabel}
	labelIdx := map[string]int{}
	seriesIdx := map[string]int{}
	for _, r := range rows {
		if skip[r.Label] {
			continue
		}
		if _, ok := labelIdx[r.Label]; !ok {
			labelIdx[r.Label] = len(c.Labels)
			c.Labels = append(c.Labels, r.Label)
		}
		if _, ok := seriesIdx[r.Series]; !ok {
			seriesIdx[r.Series] = len(c.Series)
			c.Series = append(c.Series, Series{Name: r.Series})
		}
	}
	for i := range c.Series {
		c.Series[i].Values = make([]float64, len(c.Labels))
	}
	for _, r := range rows {
		if skip[r.Label] {
			continue
		}
		c.Series[seriesIdx[r.Series]].Values[labelIdx[r.Label]] = r.Value
	}
	return c
}

// RowData is the (series, label, value) tuple FromRows consumes; it
// matches experiments.Row structurally without importing it.
type RowData struct {
	Series string
	Label  string
	Value  float64
}

// SortSeries orders the chart's series alphabetically (stable output for
// tests and diffs).
func (c *Chart) SortSeries() {
	sort.Slice(c.Series, func(i, j int) bool { return c.Series[i].Name < c.Series[j].Name })
}
