// Package branch implements branch direction predictors. Table 1's
// machine uses a hashed perceptron predictor (Tarjan & Skadron, TACO'05);
// the simulator can run either that model or a fixed-accuracy coin flip
// (the default, which keeps runs comparable across workloads whose branch
// behaviour differs).
package branch

import "itpsim/internal/arch"

// Predictor predicts conditional branch directions and learns from
// outcomes.
type Predictor interface {
	Name() string
	// Predict returns the predicted direction for the branch at pc.
	Predict(pc arch.Addr) bool
	// Update trains the predictor with the actual outcome.
	Update(pc arch.Addr, taken bool)
}

// Fixed is a deterministic fixed-accuracy predictor: it is "correct" with
// the configured probability, independent of the branch. It never needs
// the actual outcome at prediction time; callers compare Predict against
// the real direction.
type Fixed struct {
	accuracy float64
	rng      uint64
	// pending holds the outcome Predict committed to emit next.
	correct bool
}

// NewFixed returns a predictor with the given accuracy in [0,1].
func NewFixed(accuracy float64, seed uint64) *Fixed {
	if seed == 0 {
		seed = 0x2545f4914f6cdd1d
	}
	return &Fixed{accuracy: accuracy, rng: seed}
}

// Name implements Predictor.
func (*Fixed) Name() string { return "fixed" }

// Correct draws whether this prediction is correct (helper used by the
// simulator, which knows the true outcome).
//
//itp:hotpath
func (f *Fixed) Correct() bool {
	f.rng ^= f.rng << 13
	f.rng ^= f.rng >> 7
	f.rng ^= f.rng << 17
	return float64(f.rng>>11)/float64(1<<53) < f.accuracy
}

// Predict implements Predictor; with a known outcome unavailable it
// predicts taken and lets Correct() drive the simulator's decision.
//
//itp:hotpath
func (f *Fixed) Predict(arch.Addr) bool { return f.Correct() }

// Update implements Predictor (no state).
//
//itp:hotpath
func (*Fixed) Update(arch.Addr, bool) {}

// Perceptron is a hashed perceptron predictor: several weight tables
// indexed by hashes of the PC and different-length slices of the global
// history register; the prediction is the sign of the summed weights, and
// training bumps each contributing weight when the prediction was wrong
// or the sum was below the confidence threshold.
type Perceptron struct {
	tables  [][]int8
	history uint64
	// hashLens are the history lengths (in bits) each table sees.
	hashLens []uint
	// theta is the training threshold (classic: 1.93*h + 14).
	theta int
}

const (
	perceptronTableBits = 12
	perceptronWeightMax = 63
	perceptronWeightMin = -64
)

// NewPerceptron builds the predictor with the classic geometric history
// lengths.
func NewPerceptron() *Perceptron {
	lens := []uint{0, 4, 8, 16, 32}
	p := &Perceptron{hashLens: lens, theta: int(1.93*float64(len(lens))*8) + 14}
	p.tables = make([][]int8, len(lens))
	for i := range p.tables {
		p.tables[i] = make([]int8, 1<<perceptronTableBits)
	}
	return p
}

// Name implements Predictor.
func (*Perceptron) Name() string { return "hashed-perceptron" }

//itp:hotpath
func (p *Perceptron) index(table int, pc arch.Addr) int {
	hlen := p.hashLens[table]
	var hist uint64
	if hlen > 0 {
		hist = p.history & (1<<hlen - 1)
	}
	h := uint64(pc>>2) ^ (hist * 0x9e3779b97f4a7c15) ^ (uint64(table) << 7)
	h ^= h >> 23
	return int(h & (1<<perceptronTableBits - 1))
}

// sum computes the perceptron output for pc.
//
//itp:hotpath
func (p *Perceptron) sum(pc arch.Addr) int {
	s := 0
	for t := range p.tables {
		s += int(p.tables[t][p.index(t, pc)])
	}
	return s
}

// Predict implements Predictor.
//
//itp:hotpath
func (p *Perceptron) Predict(pc arch.Addr) bool { return p.sum(pc) >= 0 }

// Update implements Predictor: train on mispredictions and low-confidence
// correct predictions, then shift the outcome into the history.
//
//itp:hotpath
func (p *Perceptron) Update(pc arch.Addr, taken bool) {
	s := p.sum(pc)
	predicted := s >= 0
	if predicted != taken || abs(s) < p.theta {
		for t := range p.tables {
			idx := p.index(t, pc)
			w := p.tables[t][idx]
			if taken && w < perceptronWeightMax {
				w++
			} else if !taken && w > perceptronWeightMin {
				w--
			}
			p.tables[t][idx] = w
		}
	}
	p.history = p.history<<1 | b2u(taken)
}

//itp:hotpath
func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

//itp:hotpath
func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// HashState implements arch.StateHasher: the full weight tables plus the
// global history register, so beacon streams cover predictor state.
func (p *Perceptron) HashState(h *arch.StateHash) {
	for _, table := range p.tables {
		for _, w := range table {
			h.Word(uint64(uint8(w)))
		}
	}
	h.Word(p.history)
}
