package branch

import (
	"testing"

	"itpsim/internal/arch"
)

func perceptronHash(p *Perceptron) uint64 {
	h := arch.NewStateHash()
	p.HashState(&h)
	return h.Sum()
}

func trainedPerceptron() *Perceptron {
	p := NewPerceptron()
	for i := 0; i < 64; i++ {
		pc := arch.Addr(0x400000 + uint64(i%8)*4)
		p.Update(pc, i%3 != 0)
	}
	return p
}

func TestPerceptronHashStateDeterministic(t *testing.T) {
	a, b := trainedPerceptron(), trainedPerceptron()
	if perceptronHash(a) != perceptronHash(b) {
		t.Fatal("identically trained predictors must hash equal")
	}
	if perceptronHash(a) != perceptronHash(a) {
		t.Fatal("hashing must not mutate state")
	}
}

func TestPerceptronHashStateSeesUpdate(t *testing.T) {
	a, b := trainedPerceptron(), trainedPerceptron()
	a.Update(0x400020, true)
	if perceptronHash(a) == perceptronHash(b) {
		t.Fatal("a training update must change the hash")
	}
}

func TestPerceptronHashStateSeesHistoryOnly(t *testing.T) {
	// The global history register feeds the table indices, so two
	// predictors with equal weights but different history diverge on the
	// next update — the hash must distinguish them.
	a, b := trainedPerceptron(), trainedPerceptron()
	a.history ^= 1
	if perceptronHash(a) == perceptronHash(b) {
		t.Fatal("a history-register difference must change the hash")
	}
}

func TestPerceptronPredictUnchangedByHashing(t *testing.T) {
	p := trainedPerceptron()
	before := p.Predict(0x400004)
	perceptronHash(p)
	if p.Predict(0x400004) != before {
		t.Fatal("hashing perturbed the prediction")
	}
}
