package branch

import (
	"testing"
)

func TestFixedAccuracy(t *testing.T) {
	f := NewFixed(0.9, 42)
	correct := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if f.Correct() {
			correct++
		}
	}
	acc := float64(correct) / n
	if acc < 0.88 || acc > 0.92 {
		t.Errorf("fixed accuracy = %.3f, want ~0.90", acc)
	}
}

func TestFixedDeterministic(t *testing.T) {
	a, b := NewFixed(0.9, 7), NewFixed(0.9, 7)
	for i := 0; i < 1000; i++ {
		if a.Correct() != b.Correct() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestPerceptronLearnsBias(t *testing.T) {
	p := NewPerceptron()
	pc := uint64(0x400100)
	// Always-taken branch: should converge to near-perfect quickly.
	correct := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if p.Predict(pc) == true {
			correct++
		}
		p.Update(pc, true)
	}
	if float64(correct)/n < 0.95 {
		t.Errorf("always-taken accuracy = %.3f, want > 0.95", float64(correct)/n)
	}
}

func TestPerceptronLearnsAlternating(t *testing.T) {
	p := NewPerceptron()
	pc := uint64(0x8000)
	// Strict alternation is history-predictable; the perceptron should
	// beat a static predictor (50%) decisively after warmup.
	correct := 0
	const warm, n = 2000, 10000
	taken := false
	for i := 0; i < warm+n; i++ {
		pred := p.Predict(pc)
		if i >= warm && pred == taken {
			correct++
		}
		p.Update(pc, taken)
		taken = !taken
	}
	if acc := float64(correct) / n; acc < 0.9 {
		t.Errorf("alternating accuracy = %.3f, want > 0.9", acc)
	}
}

func TestPerceptronLearnsPeriodicPattern(t *testing.T) {
	p := NewPerceptron()
	pc := uint64(0x1234)
	// Period-5 loop branch (4 taken, 1 not): classic loop exit pattern.
	correct, total := 0, 0
	for i := 0; i < 20000; i++ {
		taken := i%5 != 4
		pred := p.Predict(pc)
		if i > 4000 {
			total++
			if pred == taken {
				correct++
			}
		}
		p.Update(pc, taken)
	}
	if acc := float64(correct) / float64(total); acc < 0.85 {
		t.Errorf("loop pattern accuracy = %.3f, want > 0.85", acc)
	}
}

func TestPerceptronSeparatesBranches(t *testing.T) {
	p := NewPerceptron()
	// Two branches with opposite biases must not destroy each other.
	a, b := uint64(0x111000), uint64(0x222000)
	okA, okB := 0, 0
	const n = 4000
	for i := 0; i < n; i++ {
		if p.Predict(a) == true {
			okA++
		}
		p.Update(a, true)
		if p.Predict(b) == false {
			okB++
		}
		p.Update(b, false)
	}
	if float64(okA)/n < 0.9 || float64(okB)/n < 0.9 {
		t.Errorf("per-branch accuracies %.3f/%.3f, want > 0.9", float64(okA)/n, float64(okB)/n)
	}
}

func TestPerceptronWeightSaturation(t *testing.T) {
	p := NewPerceptron()
	pc := uint64(0x99)
	for i := 0; i < 10000; i++ {
		p.Update(pc, true)
	}
	for t1 := range p.tables {
		for _, w := range p.tables[t1] {
			if w > perceptronWeightMax || w < perceptronWeightMin {
				t.Fatalf("weight %d out of range", w)
			}
		}
	}
}

func TestPredictorNames(t *testing.T) {
	if NewFixed(0.9, 1).Name() != "fixed" {
		t.Error("fixed name")
	}
	if NewPerceptron().Name() != "hashed-perceptron" {
		t.Error("perceptron name")
	}
}
