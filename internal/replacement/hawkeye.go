package replacement

import "itpsim/internal/arch"

// Hawkeye (Jain & Lin, ISCA'16) learns from Belady's OPT: a set sampler
// replays recent accesses through OPTgen (an occupancy vector that
// reconstructs whether OPT would have hit), and a PC-indexed predictor
// classifies instructions as cache-friendly or cache-averse. Friendly
// fills insert protected; averse fills insert at distant RRPV so they
// leave quickly. Re-implemented from the paper's description.
type Hawkeye struct {
	pred     []int8 // 3-bit saturating: >=0 friendly, <0 averse
	predMask uint64

	samplers      []*optgenSet
	sampleSetMask int
	sampleShift   uint
}

const (
	hawkeyePredSize = 8192
	hawkeyePredMax  = 3
	hawkeyePredMin  = -4
	hkSampleEvery   = 16
	// optgenWindow is the history length (in set accesses) OPTgen sees.
	optgenWindow = 128
)

// optgenSet is the sampler state for one sampled set.
type optgenSet struct {
	ways int
	// occupancy[i] counts live OPT intervals crossing quantum i.
	occupancy [optgenWindow]uint8
	clock     uint64
	// lastAccess maps block -> (time, pc sig) of its previous access.
	lastAccess map[uint64]optgenEntry
}

type optgenEntry struct {
	time uint64
	sig  uint32
}

// NewHawkeye builds the policy for the given geometry.
func NewHawkeye(sets, ways int) *Hawkeye {
	h := &Hawkeye{
		pred:          make([]int8, hawkeyePredSize),
		predMask:      hawkeyePredSize - 1,
		sampleSetMask: hkSampleEvery - 1,
	}
	n := sets/hkSampleEvery + 1
	h.samplers = make([]*optgenSet, n)
	for i := range h.samplers {
		h.samplers[i] = &optgenSet{ways: ways, lastAccess: make(map[uint64]optgenEntry)}
	}
	return h
}

// Name implements Policy.
func (*Hawkeye) Name() string { return "hawkeye" }

func (h *Hawkeye) sig(pc uint64) uint32 {
	x := pc >> 2
	x ^= x >> 13
	x *= 0x9e3779b97f4a7c15
	return uint32((x >> 17) & h.predMask)
}

func (h *Hawkeye) friendly(pc uint64) bool { return h.pred[h.sig(pc)] >= 0 }

func (h *Hawkeye) train(sig uint32, hit bool) {
	if hit {
		if h.pred[sig] < hawkeyePredMax {
			h.pred[sig]++
		}
	} else if h.pred[sig] > hawkeyePredMin {
		h.pred[sig]--
	}
}

// observe runs one access through OPTgen for sampled sets.
func (h *Hawkeye) observe(setIdx int, block uint64, pc uint64) {
	if setIdx&h.sampleSetMask != 0 {
		return
	}
	s := h.samplers[setIdx/hkSampleEvery]
	s.clock++
	now := s.clock
	if prev, ok := s.lastAccess[block]; ok && now-prev.time < optgenWindow {
		// Would OPT have kept the block across [prev, now)? Yes iff the
		// occupancy never reached associativity in that interval.
		fits := true
		for t := prev.time; t < now; t++ {
			if s.occupancy[t%optgenWindow] >= uint8(s.ways) {
				fits = false
				break
			}
		}
		h.train(prev.sig, fits)
		if fits {
			for t := prev.time; t < now; t++ {
				s.occupancy[t%optgenWindow]++
			}
		}
	} else if ok {
		// Reuse beyond the window: treat as an OPT miss for the old PC.
		h.train(prev.sig, false)
	}
	// Reset the quantum this access starts (the window slides).
	s.occupancy[now%optgenWindow] = 0
	s.lastAccess[block] = optgenEntry{time: now, sig: h.sig(pc)}
	// Bound the map.
	if len(s.lastAccess) > 8*optgenWindow {
		// Deleting every entry matching a pure age predicate leaves the
		// same surviving map state in any iteration order.
		//itp:deterministic — predicate prune; order cannot affect the result
		for k, v := range s.lastAccess {
			if now-v.time >= optgenWindow {
				delete(s.lastAccess, k)
			}
		}
	}
}

// Victim implements Policy: evict the first cache-averse (distant RRPV)
// block; if all are friendly, evict the oldest (highest RRPV after
// aging) and detrain its PC, as Hawkeye prescribes.
func (h *Hawkeye) Victim(_ int, set []Line, _ *arch.Access) int {
	if w := InvalidWay(set); w >= 0 {
		return w
	}
	for i := range set {
		if set[i].RRPV >= rrpvMax {
			return i
		}
	}
	// All friendly: evict the least recent (deepest stack) and detrain.
	victim := StackLRUVictim(set)
	h.train(uint32(set[victim].Sig)&uint32(h.predMask), false)
	return victim
}

// OnFill implements Policy.
func (h *Hawkeye) OnFill(setIdx int, set []Line, way int, in *arch.Access) {
	h.observe(setIdx, set[way].Tag, in.PC)
	set[way].Sig = uint16(h.sig(in.PC))
	if h.friendly(in.PC) {
		set[way].RRPV = rrpvNear
	} else {
		set[way].RRPV = rrpvMax
	}
	MoveToStackPos(set, way, 0)
}

// OnHit implements Policy.
func (h *Hawkeye) OnHit(setIdx int, set []Line, way int, in *arch.Access) {
	h.observe(setIdx, set[way].Tag, in.PC)
	set[way].Sig = uint16(h.sig(in.PC))
	if h.friendly(in.PC) {
		set[way].RRPV = rrpvNear
	} else {
		set[way].RRPV = rrpvMax
	}
	MoveToStackPos(set, way, 0)
}

// OnEvict implements Policy.
func (*Hawkeye) OnEvict(int, []Line, int) {}
