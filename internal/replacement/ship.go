package replacement

import "itpsim/internal/arch"

// SHiP (signature-based hit predictor, Wu et al. MICRO'11) correlates PC
// signatures with block reuse: a table of saturating counters learns, per
// signature, whether blocks inserted by that PC tend to be re-referenced.
// Blocks from never-reused signatures are inserted at distant RRPV.
type SHiP struct {
	shct     []uint8 // signature history counter table, 3-bit counters
	shctMask uint64
	rng      xorshift64
}

const (
	shipTableSize = 16384
	shipCtrMax    = 7
	shipCtrInit   = 1
)

// NewSHiP returns a SHiP policy.
func NewSHiP(sets int, seed uint64) *SHiP {
	s := &SHiP{
		shct:     make([]uint8, shipTableSize),
		shctMask: shipTableSize - 1,
		rng:      newXorshift(seed),
	}
	for i := range s.shct {
		s.shct[i] = shipCtrInit
	}
	return s
}

// Name implements Policy.
func (*SHiP) Name() string { return "ship" }

// signature hashes a PC into the SHCT index space.
func (s *SHiP) signature(pc uint64) uint16 {
	h := pc >> 2
	h ^= h >> 13
	h *= 0x9e3779b97f4a7c15
	return uint16((h >> 17) & s.shctMask)
}

// Victim implements Policy (SRRIP-style aging victim search).
func (*SHiP) Victim(_ int, set []Line, _ *arch.Access) int { return rripVictim(set) }

// OnFill implements Policy: insertion RRPV depends on the signature's
// learned reuse behaviour.
func (s *SHiP) OnFill(_ int, set []Line, way int, in *arch.Access) {
	sig := s.signature(in.PC)
	set[way].Sig = sig
	set[way].Reused = false
	if s.shct[sig] == 0 {
		set[way].RRPV = rrpvMax
	} else {
		set[way].RRPV = rrpvLong
	}
}

// OnHit implements Policy: promote and train the signature as reused.
func (s *SHiP) OnHit(_ int, set []Line, way int, _ *arch.Access) {
	set[way].RRPV = rrpvNear
	if !set[way].Reused {
		set[way].Reused = true
		if s.shct[set[way].Sig] < shipCtrMax {
			s.shct[set[way].Sig]++
		}
	}
}

// OnEvict implements Policy: a dead block (never reused) trains its
// signature downward.
func (s *SHiP) OnEvict(_ int, set []Line, way int) {
	if set[way].Valid && !set[way].Reused {
		if s.shct[set[way].Sig] > 0 {
			s.shct[set[way].Sig]--
		}
	}
}
