package replacement

import "itpsim/internal/arch"

// Mockingjay (Shah, Jain & Lin, HPCA'22) mimics Belady's MIN policy by
// predicting each block's reuse distance from a PC-indexed predictor
// trained on a set sampler, and evicting the line whose next use is
// estimated to be farthest in the future.
//
// This is a re-implementation from the paper's description (the original
// artifact is C++): a sampler records recent block accesses for a subset
// of sets and trains the reuse-distance predictor on observed distances
// (or "scan" for blocks that age out of the sampler unreused); cache lines
// carry an estimated time of next access (ETA); the victim is the line
// with the maximum ETA, with lines predicted "scan" evicted first.
type Mockingjay struct {
	pred          []int32 // predicted reuse distance per signature, -1 = scan
	predMask      uint64
	sampler       map[uint64]*samplerEntry
	samplerFIFO   []uint64
	sampleSetMask int
	clock         uint64 // logical time: one tick per cache access
	maxRD         int32
}

type samplerEntry struct {
	sig  uint16
	time uint64
}

const (
	mjTableSize   = 8192
	mjSamplerCap  = 4096
	mjSampleEvery = 8 // sample 1 of every 8 sets
)

// NewMockingjay returns a Mockingjay policy for the given geometry; maxRD
// scales with cache capacity (a block not reused within ~4x the cache's
// block count is treated as a scan).
func NewMockingjay(sets, ways int) *Mockingjay {
	m := &Mockingjay{
		pred:          make([]int32, mjTableSize),
		predMask:      mjTableSize - 1,
		sampler:       make(map[uint64]*samplerEntry),
		sampleSetMask: mjSampleEvery - 1,
		maxRD:         int32(4 * sets * ways),
	}
	for i := range m.pred {
		m.pred[i] = m.maxRD / 2
	}
	return m
}

// Name implements Policy.
func (*Mockingjay) Name() string { return "mockingjay" }

func (m *Mockingjay) signature(pc uint64) uint16 {
	h := pc >> 2
	h ^= h >> 11
	h *= 0xff51afd7ed558ccd
	return uint16((h >> 19) & m.predMask)
}

// train nudges the predictor for sig toward the observed reuse distance
// using a 1/4 exponential moving average; rd < 0 records a scan.
func (m *Mockingjay) train(sig uint16, rd int32) {
	cur := m.pred[sig]
	if rd < 0 || rd > m.maxRD {
		rd = m.maxRD
	}
	m.pred[sig] = cur + (rd-cur)/4
}

// sample records an access to blockAddr in the sampler (for sampled sets)
// and trains on the previously recorded access if present.
func (m *Mockingjay) sample(setIdx int, blockAddr, pc uint64) {
	if setIdx&m.sampleSetMask != 0 {
		return
	}
	sig := m.signature(pc)
	if prev, ok := m.sampler[blockAddr]; ok {
		m.train(prev.sig, int32(m.clock-prev.time))
		prev.sig = sig
		prev.time = m.clock
		return
	}
	// Bound the sampler: age out the oldest entries FIFO-style, training
	// them as scans (they were not reused while sampled).
	if len(m.sampler) >= mjSamplerCap {
		for len(m.samplerFIFO) > 0 {
			old := m.samplerFIFO[0]
			m.samplerFIFO = m.samplerFIFO[1:]
			if e, ok := m.sampler[old]; ok {
				m.train(e.sig, -1)
				delete(m.sampler, old)
				break
			}
		}
	}
	m.sampler[blockAddr] = &samplerEntry{sig: sig, time: m.clock}
	m.samplerFIFO = append(m.samplerFIFO, blockAddr)
}

// Victim implements Policy: evict the line whose estimated next access is
// farthest in the future; expired predictions (ETA already passed) lose
// ties to live ones so provably-stale lines go first.
func (m *Mockingjay) Victim(_ int, set []Line, _ *arch.Access) int {
	if w := InvalidWay(set); w >= 0 {
		return w
	}
	victim, worst := 0, int64(-1<<62)
	for i := range set {
		// Score: how far in the future we expect the next access;
		// overdue lines score by how overdue they are plus a large
		// bias so they are preferred.
		score := int64(set[i].ETA) - int64(m.clock)
		if score < 0 {
			score = -score + int64(m.maxRD)
		}
		if score > worst {
			victim, worst = i, score
		}
	}
	return victim
}

// OnFill implements Policy.
func (m *Mockingjay) OnFill(setIdx int, set []Line, way int, in *arch.Access) {
	m.clock++
	m.sample(setIdx, set[way].Tag, in.PC)
	sig := m.signature(in.PC)
	set[way].Sig = sig
	set[way].ETA = m.clock + uint64(m.pred[sig])
}

// OnHit implements Policy: re-predict from the hitting PC.
func (m *Mockingjay) OnHit(setIdx int, set []Line, way int, in *arch.Access) {
	m.clock++
	m.sample(setIdx, set[way].Tag, in.PC)
	sig := m.signature(in.PC)
	set[way].Sig = sig
	set[way].ETA = m.clock + uint64(m.pred[sig])
}

// OnEvict implements Policy.
func (*Mockingjay) OnEvict(int, []Line, int) {}
