// Package replacement implements cache replacement policies: the
// translation-oblivious baselines (LRU, Random, SRRIP, BRRIP, DRRIP, SHiP,
// Mockingjay) and the translation-aware prior work the paper compares
// against (PTP, T-DRRIP). The paper's own xPTP policy lives in
// internal/core next to iTP, but implements the same Policy interface.
package replacement

import (
	"fmt"

	"itpsim/internal/arch"
)

// Line is the per-block metadata a policy can observe and annotate. The
// cache owns []Line per set; policies mutate only the policy-state fields.
type Line struct {
	Valid bool
	Dirty bool
	Tag   uint64 // block number
	PC    uint64 // program counter of the filling access
	Kind  arch.Kind
	// IsPTE marks blocks holding page-table payload; IsDataPTE
	// additionally marks PTEs serving data translations (the xPTP Type
	// bit, propagated through the MSHR as in Figure 7).
	IsPTE     bool
	IsDataPTE bool
	// STLBMiss marks demand blocks whose triggering access missed the
	// STLB (T-DRRIP's eviction bias).
	STLBMiss bool
	Thread   uint8
	// Prefetched marks blocks filled by a prefetcher and not yet
	// demanded.
	Prefetched bool

	// Policy-owned state.
	Stack  uint8  // exact recency-stack position, 0 = MRU
	RRPV   uint8  // re-reference prediction value (RRIP family)
	Sig    uint16 // PC signature (SHiP, Mockingjay)
	Reused bool   // block was hit since fill (SHiP training)
	ETA    uint64 // estimated time of next access (Mockingjay)
}

// Policy decides victims and maintains per-line replacement state.
// Victim returns the way to evict (the caller guarantees the set is full
// of valid lines when no invalid way exists). OnFill runs after the new
// line's identity fields are written; OnHit runs on every demand hit;
// OnEvict runs just before a valid line is overwritten, so policies can
// train on dead blocks.
type Policy interface {
	Name() string
	//itp:hotpath
	Victim(setIdx int, set []Line, in *arch.Access) int
	//itp:hotpath
	OnFill(setIdx int, set []Line, way int, in *arch.Access)
	//itp:hotpath
	OnHit(setIdx int, set []Line, way int, in *arch.Access)
	//itp:hotpath
	OnEvict(setIdx int, set []Line, way int)
}

// InitSet establishes the stack-position permutation invariant for a
// freshly created set: positions are a permutation of 0..len(set)-1.
//
//itp:hotpath
func InitSet(set []Line) {
	for i := range set {
		set[i].Stack = uint8(i)
	}
}

// InvalidWay returns the index of an invalid line with the deepest stack
// position, or -1 if the set is full.
//
//itp:hotpath
func InvalidWay(set []Line) int {
	best, bestStack := -1, -1
	for i := range set {
		if !set[i].Valid && int(set[i].Stack) > bestStack {
			best, bestStack = i, int(set[i].Stack)
		}
	}
	return best
}

// StackLRUVictim returns the way at the bottom of the recency stack,
// preferring invalid ways.
//
//itp:hotpath
func StackLRUVictim(set []Line) int {
	if w := InvalidWay(set); w >= 0 {
		return w
	}
	victim, deepest := 0, -1
	for i := range set {
		if int(set[i].Stack) > deepest {
			victim, deepest = i, int(set[i].Stack)
		}
	}
	return victim
}

// MoveToStackPos repositions way to stack position pos, shifting the
// intervening lines by one; the permutation invariant is preserved.
//
//itp:hotpath
func MoveToStackPos(set []Line, way, pos int) {
	old := int(set[way].Stack)
	switch {
	case pos < old:
		for i := range set {
			if p := int(set[i].Stack); p >= pos && p < old {
				set[i].Stack++
			}
		}
	case pos > old:
		for i := range set {
			if p := int(set[i].Stack); p > old && p <= pos {
				set[i].Stack--
			}
		}
	default:
		return
	}
	set[way].Stack = uint8(pos)
}

// StackPosOf returns the way currently at stack position pos, or -1.
//
//itp:hotpath
func StackPosOf(set []Line, pos int) int {
	for i := range set {
		if int(set[i].Stack) == pos {
			return i
		}
	}
	return -1
}

// CheckStackInvariant reports whether the set's stack positions form a
// permutation of 0..len(set)-1 (test helper).
func CheckStackInvariant(set []Line) bool {
	seen := make([]bool, len(set))
	for i := range set {
		p := int(set[i].Stack)
		if p < 0 || p >= len(set) || seen[p] {
			return false
		}
		seen[p] = true
	}
	return true
}

// FromName constructs a named baseline policy sized for a cache with the
// given geometry. The paper's own policies ("xptp", "itp") are built in
// internal/core and are not available here.
func FromName(name string, sets, ways int, seed uint64) (Policy, error) {
	switch name {
	case "lru":
		return NewLRU(), nil
	case "random":
		return NewRandom(seed), nil
	case "srrip":
		return NewSRRIP(), nil
	case "brrip":
		return NewBRRIP(seed), nil
	case "drrip":
		return NewDRRIP(sets, seed), nil
	case "ship":
		return NewSHiP(sets, seed), nil
	case "mockingjay":
		return NewMockingjay(sets, ways), nil
	case "hawkeye":
		return NewHawkeye(sets, ways), nil
	case "ptp":
		return NewPTP(), nil
	case "tdrrip":
		return NewTDRRIP(sets, seed), nil
	case "tship":
		return NewTSHiP(sets, seed), nil
	case "emissary":
		return NewEmissary(), nil
	default:
		return nil, fmt.Errorf("replacement: unknown policy %q", name)
	}
}

// xorshift64 is the tiny deterministic PRNG used by stochastic policies.
type xorshift64 uint64

func newXorshift(seed uint64) xorshift64 {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return xorshift64(seed)
}

//itp:hotpath
func (x *xorshift64) next() uint64 {
	v := uint64(*x)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = xorshift64(v)
	return v
}
