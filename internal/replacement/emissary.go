package replacement

import "itpsim/internal/arch"

// Emissary is an instruction-aware L2C replacement policy modelled on
// Nagendra et al. (ISCA'23): it preserves code blocks whose misses were
// observed to stall the front end. This re-implementation tracks, per PC
// signature, how often instruction blocks from that region missed (a
// proxy for "miss caused a front-end stall" in a trace-driven setting);
// protected code blocks are inserted at near re-reference and skipped
// during victim selection while non-critical candidates exist.
//
// The paper's Section 7 points out that Emissary is orthogonal to xPTP
// (code blocks vs data-PTE blocks) and that combining them "has the
// potential to provide larger performance gains than iTP+xPTP" — the
// combination is available as the "xptp-emissary" L2C policy in
// internal/sim.
type Emissary struct {
	// critTable counts recent misses per code-region signature; regions
	// above the threshold are treated as stall-critical.
	critTable []uint8
	mask      uint64
	threshold uint8
}

const (
	emissaryTableSize = 4096
	emissaryCtrMax    = 15
	emissaryThresh    = 4
)

// NewEmissary returns an Emissary policy.
func NewEmissary() *Emissary {
	return &Emissary{
		critTable: make([]uint8, emissaryTableSize),
		mask:      emissaryTableSize - 1,
		threshold: emissaryThresh,
	}
}

// Name implements Policy.
func (*Emissary) Name() string { return "emissary" }

func (e *Emissary) sig(pc uint64) uint64 {
	h := pc >> 6 // block granularity
	h ^= h >> 13
	h *= 0x9e3779b97f4a7c15
	return (h >> 20) & e.mask
}

// critical reports whether code around pc has been missing hard.
func (e *Emissary) critical(pc uint64) bool {
	return e.critTable[e.sig(pc)] >= e.threshold
}

// train bumps the criticality of a code region on an instruction miss.
func (e *Emissary) train(pc uint64) {
	s := e.sig(pc)
	if e.critTable[s] < emissaryCtrMax {
		e.critTable[s]++
	}
}

// decay lowers criticality when protected blocks go unused.
func (e *Emissary) decay(pc uint64) {
	s := e.sig(pc)
	if e.critTable[s] > 0 {
		e.critTable[s]--
	}
}

// Victim implements Policy: LRU among blocks that are neither critical
// code nor (to stay composable) currently protected; plain LRU fallback.
func (e *Emissary) Victim(_ int, set []Line, _ *arch.Access) int {
	if w := InvalidWay(set); w >= 0 {
		return w
	}
	victim, deepest := -1, -1
	for i := range set {
		if set[i].Kind == arch.IFetch && e.critical(set[i].PC) {
			continue
		}
		if int(set[i].Stack) > deepest {
			victim, deepest = i, int(set[i].Stack)
		}
	}
	if victim >= 0 {
		return victim
	}
	return StackLRUVictim(set)
}

// OnFill implements Policy: LRU insertion; instruction misses train the
// criticality table.
func (e *Emissary) OnFill(_ int, set []Line, way int, in *arch.Access) {
	if in.Kind == arch.IFetch {
		e.train(in.PC)
	}
	MoveToStackPos(set, way, 0)
}

// OnHit implements Policy.
func (*Emissary) OnHit(_ int, set []Line, way int, _ *arch.Access) {
	set[way].Reused = true
	MoveToStackPos(set, way, 0)
}

// OnEvict implements Policy: evicting a *protected* code block that was
// never reused decays its region — protection that bought no hits is
// withdrawn. Evictions of unprotected or reused code blocks must not
// decay, or the training from repeated misses would cancel itself and no
// region could ever become critical.
func (e *Emissary) OnEvict(_ int, set []Line, way int) {
	l := &set[way]
	if l.Valid && l.Kind == arch.IFetch && !l.Reused && e.critical(l.PC) {
		e.decay(l.PC)
	}
}

// XPTPEmissary composes a data-PTE-protecting policy with Emissary's
// code protection (the paper's suggested future-work combination): the
// victim must be neither a data-PTE block (xPTP) nor a critical code
// block (Emissary) while such a candidate exists; insertions and
// promotions follow LRU with Emissary's criticality training.
type XPTPEmissary struct {
	em *Emissary
	// k is the xPTP inequality parameter (see core.XPTP); protection is
	// bypassed when the best alternative is within k positions of the
	// stack bottom.
	k int
}

// NewXPTPEmissary builds the combined policy with the given xPTP K.
func NewXPTPEmissary(k int) *XPTPEmissary {
	return &XPTPEmissary{em: NewEmissary(), k: k}
}

// Name implements Policy.
func (*XPTPEmissary) Name() string { return "xptp-emissary" }

// Victim implements Policy.
func (x *XPTPEmissary) Victim(_ int, set []Line, _ *arch.Access) int {
	if w := InvalidWay(set); w >= 0 {
		return w
	}
	lruVictim, lruDepth := 0, -1
	altVictim, altDepth := -1, -1
	for i := range set {
		pos := int(set[i].Stack)
		if pos > lruDepth {
			lruVictim, lruDepth = i, pos
		}
		if set[i].IsDataPTE {
			continue
		}
		if set[i].Kind == arch.IFetch && x.em.critical(set[i].PC) {
			continue
		}
		if pos > altDepth {
			altVictim, altDepth = i, pos
		}
	}
	if altVictim < 0 {
		return lruVictim
	}
	if (len(set)-1)-altDepth >= x.k {
		return lruVictim
	}
	return altVictim
}

// OnFill implements Policy.
func (x *XPTPEmissary) OnFill(si int, set []Line, way int, in *arch.Access) {
	x.em.OnFill(si, set, way, in)
}

// OnHit implements Policy.
func (x *XPTPEmissary) OnHit(si int, set []Line, way int, in *arch.Access) {
	x.em.OnHit(si, set, way, in)
}

// OnEvict implements Policy.
func (x *XPTPEmissary) OnEvict(si int, set []Line, way int) {
	x.em.OnEvict(si, set, way)
}
