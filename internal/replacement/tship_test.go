package replacement

import (
	"testing"

	"itpsim/internal/arch"
)

func TestTSHiPPTEProtection(t *testing.T) {
	p := NewTSHiP(64, 5)
	set := newSet(4)
	fillAll(set)
	set[1].IsPTE = true
	p.OnFill(0, set, 1, &arch.Access{Kind: arch.PTW, PC: 0x10})
	if set[1].RRPV != rrpvNear {
		t.Errorf("PTE insertion RRPV = %d, want %d", set[1].RRPV, rrpvNear)
	}
	set[2].STLBMiss = true
	p.OnFill(0, set, 2, &arch.Access{Kind: arch.Load, PC: 0x20})
	if set[2].RRPV != rrpvMax {
		t.Errorf("STLB-miss insertion RRPV = %d, want %d", set[2].RRPV, rrpvMax)
	}
	if v := p.Victim(0, set, &arch.Access{}); v != 2 {
		t.Errorf("victim = %d, want STLB-miss block 2", v)
	}
}

func TestTSHiPFallsBackToSHiP(t *testing.T) {
	p := NewTSHiP(64, 5)
	set := newSet(4)
	fillAll(set)
	// Plain demand block: SHiP insertion applies (long by default).
	p.OnFill(0, set, 0, &arch.Access{Kind: arch.Load, PC: 0x30})
	if set[0].RRPV != rrpvLong {
		t.Errorf("default insertion RRPV = %d, want %d", set[0].RRPV, rrpvLong)
	}
}

func TestTSHiPAllPTEsStillEvicts(t *testing.T) {
	p := NewTSHiP(64, 5)
	set := newSet(4)
	fillAll(set)
	for i := range set {
		set[i].IsPTE = true
		set[i].RRPV = rrpvNear
	}
	if v := p.Victim(0, set, &arch.Access{}); v < 0 || v >= 4 {
		t.Fatalf("victim out of range: %d", v)
	}
}

func TestEmissaryProtectsCriticalCode(t *testing.T) {
	e := NewEmissary()
	set := newSet(4)
	fillAll(set)
	hotPC := uint64(0x400100)
	// Train the region critical by repeated instruction misses.
	for i := 0; i < emissaryThresh+1; i++ {
		set[0].Kind = arch.IFetch
		set[0].PC = hotPC
		e.OnFill(0, set, 0, &arch.Access{Kind: arch.IFetch, PC: hotPC})
	}
	if !e.critical(hotPC) {
		t.Fatal("region should be critical after repeated misses")
	}
	// Push the code block to the LRU position; Emissary must skip it.
	MoveToStackPos(set, 0, 3)
	v := e.Victim(0, set, &arch.Access{})
	if v == 0 {
		t.Error("Emissary evicted a critical code block")
	}
}

func TestEmissaryDecaysOnlyUnreusedProtected(t *testing.T) {
	e := NewEmissary()
	set := newSet(2)
	fillAll(set)
	pc := uint64(0x400200)
	for i := 0; i < emissaryThresh+2; i++ {
		e.train(pc)
	}
	before := e.critTable[e.sig(pc)]
	set[0].Kind = arch.IFetch
	set[0].PC = pc

	// Reused protected block: no decay.
	set[0].Reused = true
	e.OnEvict(0, set, 0)
	if e.critTable[e.sig(pc)] != before {
		t.Error("reused protected block must not decay")
	}
	// Unreused protected block: decays.
	set[0].Reused = false
	e.OnEvict(0, set, 0)
	if e.critTable[e.sig(pc)] != before-1 {
		t.Error("unreused protected eviction should decay criticality")
	}
	// Sub-threshold regions never decay (training must be able to climb).
	cold := uint64(0x990000)
	e.train(cold)
	set[0].PC = cold
	e.OnEvict(0, set, 0)
	if e.critTable[e.sig(cold)] != 1 {
		t.Error("sub-threshold region must not decay")
	}
}

func TestEmissaryAllProtectedFallsBack(t *testing.T) {
	e := NewEmissary()
	set := newSet(4)
	fillAll(set)
	pc := uint64(0x400300)
	for i := 0; i < emissaryCtrMax; i++ {
		e.train(pc)
	}
	for i := range set {
		set[i].Kind = arch.IFetch
		set[i].PC = pc
	}
	if v := e.Victim(0, set, &arch.Access{}); v < 0 || v >= 4 {
		t.Fatalf("victim out of range: %d", v)
	}
}

func TestXPTPEmissaryProtectsBoth(t *testing.T) {
	x := NewXPTPEmissary(8)
	set := newSet(4)
	fillAll(set)
	// Way at LRU holds a data PTE; way above it holds critical code.
	pteWay := StackPosOf(set, 3)
	set[pteWay].IsDataPTE = true
	codeWay := StackPosOf(set, 2)
	set[codeWay].Kind = arch.IFetch
	set[codeWay].PC = 0x400400
	for i := 0; i < emissaryThresh+1; i++ {
		x.em.train(set[codeWay].PC)
	}
	v := x.Victim(0, set, &arch.Access{})
	if v == pteWay || v == codeWay {
		t.Errorf("combined policy evicted a protected block (way %d)", v)
	}
	if int(set[v].Stack) != 1 {
		t.Errorf("victim should be the deepest unprotected block, got stack %d", set[v].Stack)
	}
}

func TestXPTPEmissaryKInequality(t *testing.T) {
	// With K=1 and the best alternative 2 positions above the bottom, the
	// LRU data PTE is evicted after all.
	x := NewXPTPEmissary(1)
	set := newSet(4)
	fillAll(set)
	for _, pos := range []int{3, 2} {
		w := StackPosOf(set, pos)
		set[w].IsDataPTE = true
	}
	v := x.Victim(0, set, &arch.Access{})
	if int(set[v].Stack) != 3 {
		t.Errorf("K inequality should fall back to LRU PTE, got stack %d", set[v].Stack)
	}
}

func TestNewBaselinesViaFromName(t *testing.T) {
	for _, n := range []string{"tship", "emissary"} {
		p, err := FromName(n, 64, 8, 3)
		if err != nil || p.Name() != n {
			t.Errorf("FromName(%q) = %v, %v", n, p, err)
		}
	}
}

func TestHawkeyeLearnsFriendlyPCs(t *testing.T) {
	h := NewHawkeye(64, 4)
	// A PC whose blocks are reused quickly within a sampled set (set 0)
	// should become friendly; one that streams should become averse.
	friendlyPC, aversePC := uint64(0x1000), uint64(0x2000)
	for i := 0; i < 200; i++ {
		h.observe(0, uint64(i%2), friendlyPC)  // two blocks ping-pong: OPT hits
		h.observe(0, uint64(1000+i), aversePC) // never reused: stays cold
	}
	if !h.friendly(friendlyPC) {
		t.Error("reused PC should be cache-friendly")
	}
	// The averse PC never gets reuse feedback, so at minimum it must not
	// be MORE friendly than the reused one.
	if h.pred[h.sig(aversePC)] > h.pred[h.sig(friendlyPC)] {
		t.Error("streaming PC ranked above reused PC")
	}
}

func TestHawkeyeInsertionByPrediction(t *testing.T) {
	h := NewHawkeye(64, 4)
	set := newSet(4)
	fillAll(set)
	pc := uint64(0x3000)
	// Force averse.
	for i := 0; i < 8; i++ {
		h.train(h.sig(pc), false)
	}
	h.OnFill(1, set, 0, &arch.Access{PC: pc, Kind: arch.Load}) // unsampled set
	if set[0].RRPV != rrpvMax {
		t.Errorf("averse insertion RRPV = %d, want %d", set[0].RRPV, rrpvMax)
	}
	for i := 0; i < 16; i++ {
		h.train(h.sig(pc), true)
	}
	h.OnFill(1, set, 0, &arch.Access{PC: pc, Kind: arch.Load})
	if set[0].RRPV != rrpvNear {
		t.Errorf("friendly insertion RRPV = %d, want %d", set[0].RRPV, rrpvNear)
	}
}

func TestHawkeyeVictimPrefersAverse(t *testing.T) {
	h := NewHawkeye(64, 4)
	set := newSet(4)
	fillAll(set)
	for i := range set {
		set[i].RRPV = rrpvNear
	}
	set[2].RRPV = rrpvMax
	if v := h.Victim(1, set, &arch.Access{}); v != 2 {
		t.Errorf("victim = %d, want averse way 2", v)
	}
	// All friendly: falls back to LRU without panicking.
	set[2].RRPV = rrpvNear
	if v := h.Victim(1, set, &arch.Access{}); v < 0 || v >= 4 {
		t.Fatalf("victim out of range: %d", v)
	}
}

func TestHawkeyeViaFromName(t *testing.T) {
	p, err := FromName("hawkeye", 2048, 16, 1)
	if err != nil || p.Name() != "hawkeye" {
		t.Fatalf("FromName(hawkeye) = %v, %v", p, err)
	}
}
