package replacement

import "itpsim/internal/arch"

// LRU is exact least-recently-used replacement over the per-set recency
// stack. It is the baseline policy of the paper (Table 2) at every level.
type LRU struct{}

// NewLRU returns the LRU policy.
func NewLRU() *LRU { return &LRU{} }

// Name implements Policy.
func (*LRU) Name() string { return "lru" }

// Victim implements Policy: the bottom of the recency stack.
//
//itp:hotpath
func (*LRU) Victim(_ int, set []Line, _ *arch.Access) int {
	return StackLRUVictim(set)
}

// OnFill implements Policy: insert at MRU.
//
//itp:hotpath
func (*LRU) OnFill(_ int, set []Line, way int, _ *arch.Access) {
	MoveToStackPos(set, way, 0)
}

// OnHit implements Policy: promote to MRU.
//
//itp:hotpath
func (*LRU) OnHit(_ int, set []Line, way int, _ *arch.Access) {
	MoveToStackPos(set, way, 0)
}

// OnEvict implements Policy.
//
//itp:hotpath
func (*LRU) OnEvict(int, []Line, int) {}

// Random evicts a uniformly random valid way (invalid ways first). It
// models the first-level-TLB policy vendors commonly use and serves as a
// sanity baseline.
type Random struct {
	rng xorshift64
}

// NewRandom returns a Random policy seeded deterministically.
func NewRandom(seed uint64) *Random { return &Random{rng: newXorshift(seed)} }

// Name implements Policy.
func (*Random) Name() string { return "random" }

// Victim implements Policy.
func (r *Random) Victim(_ int, set []Line, _ *arch.Access) int {
	if w := InvalidWay(set); w >= 0 {
		return w
	}
	return int(r.rng.next() % uint64(len(set)))
}

// OnFill implements Policy (random keeps the stack fresh anyway so other
// metadata stays meaningful for mixed configurations).
func (*Random) OnFill(_ int, set []Line, way int, _ *arch.Access) {
	MoveToStackPos(set, way, 0)
}

// OnHit implements Policy.
func (*Random) OnHit(_ int, set []Line, way int, _ *arch.Access) {
	MoveToStackPos(set, way, 0)
}

// OnEvict implements Policy.
func (*Random) OnEvict(int, []Line, int) {}
