package replacement

import "itpsim/internal/arch"

// RRIP constants: 2-bit re-reference prediction values per Jaleel et al.
// (ISCA'10).
const (
	rrpvMax      = 3 // distant re-reference
	rrpvLong     = 2 // long re-reference (SRRIP insertion)
	rrpvNear     = 0 // near-immediate (promotion)
	brripEpsilon = 32
)

// rripVictim finds a way with RRPV==max, aging the set until one exists.
func rripVictim(set []Line) int {
	if w := InvalidWay(set); w >= 0 {
		return w
	}
	for {
		for i := range set {
			if set[i].RRPV >= rrpvMax {
				return i
			}
		}
		for i := range set {
			set[i].RRPV++
		}
	}
}

// SRRIP is static RRIP: insert at long, promote to near on hit.
type SRRIP struct{}

// NewSRRIP returns the SRRIP policy.
func NewSRRIP() *SRRIP { return &SRRIP{} }

// Name implements Policy.
func (*SRRIP) Name() string { return "srrip" }

// Victim implements Policy.
func (*SRRIP) Victim(_ int, set []Line, _ *arch.Access) int { return rripVictim(set) }

// OnFill implements Policy.
func (*SRRIP) OnFill(_ int, set []Line, way int, _ *arch.Access) { set[way].RRPV = rrpvLong }

// OnHit implements Policy.
func (*SRRIP) OnHit(_ int, set []Line, way int, _ *arch.Access) { set[way].RRPV = rrpvNear }

// OnEvict implements Policy.
func (*SRRIP) OnEvict(int, []Line, int) {}

// BRRIP is bimodal RRIP: insert at distant except with probability
// 1/brripEpsilon at long.
type BRRIP struct {
	rng xorshift64
}

// NewBRRIP returns the BRRIP policy.
func NewBRRIP(seed uint64) *BRRIP { return &BRRIP{rng: newXorshift(seed)} }

// Name implements Policy.
func (*BRRIP) Name() string { return "brrip" }

// Victim implements Policy.
func (*BRRIP) Victim(_ int, set []Line, _ *arch.Access) int { return rripVictim(set) }

// OnFill implements Policy.
func (b *BRRIP) OnFill(_ int, set []Line, way int, _ *arch.Access) {
	if b.rng.next()%brripEpsilon == 0 {
		set[way].RRPV = rrpvLong
	} else {
		set[way].RRPV = rrpvMax
	}
}

// OnHit implements Policy.
func (*BRRIP) OnHit(_ int, set []Line, way int, _ *arch.Access) { set[way].RRPV = rrpvNear }

// OnEvict implements Policy.
func (*BRRIP) OnEvict(int, []Line, int) {}

// duel implements set dueling (Qureshi et al., ISCA'07): a handful of
// leader sets are dedicated to each competing insertion policy; follower
// sets use whichever leader group is currently winning on misses.
type duel struct {
	sets    int
	psel    int
	pselMax int
	leaderA map[int]bool // policy A leaders (e.g. SRRIP)
	leaderB map[int]bool // policy B leaders (e.g. BRRIP)
}

func newDuel(sets int) *duel {
	d := &duel{
		sets:    sets,
		pselMax: 1023,
		psel:    512,
		leaderA: make(map[int]bool),
		leaderB: make(map[int]bool),
	}
	// 32 leader sets per policy, spread across the cache; small caches
	// dedicate at most 1/8 of their sets to each leader group.
	leaders := 32
	if leaders > sets/8 {
		leaders = sets / 8
	}
	if leaders == 0 {
		leaders = 1
	}
	stride := sets / (2 * leaders)
	if stride == 0 {
		stride = 1
	}
	for i := 0; i < leaders; i++ {
		d.leaderA[(2*i)*stride%sets] = true
		d.leaderB[(2*i+1)*stride%sets] = true
	}
	return d
}

// onMiss trains PSEL: misses in A-leaders vote for B and vice versa.
func (d *duel) onMiss(setIdx int) {
	if d.leaderA[setIdx] {
		if d.psel < d.pselMax {
			d.psel++
		}
	} else if d.leaderB[setIdx] {
		if d.psel > 0 {
			d.psel--
		}
	}
}

// useA reports whether follower sets should use policy A for setIdx.
func (d *duel) useA(setIdx int) bool {
	if d.leaderA[setIdx] {
		return true
	}
	if d.leaderB[setIdx] {
		return false
	}
	return d.psel < (d.pselMax+1)/2
}

// DRRIP is dynamic RRIP: set dueling between SRRIP and BRRIP insertion.
type DRRIP struct {
	duel *duel
	s    SRRIP
	b    BRRIP
}

// NewDRRIP returns a DRRIP policy for a cache with the given set count.
func NewDRRIP(sets int, seed uint64) *DRRIP {
	return &DRRIP{duel: newDuel(sets), b: BRRIP{rng: newXorshift(seed)}}
}

// Name implements Policy.
func (*DRRIP) Name() string { return "drrip" }

// Victim implements Policy.
func (d *DRRIP) Victim(setIdx int, set []Line, in *arch.Access) int {
	d.duel.onMiss(setIdx)
	return rripVictim(set)
}

// OnFill implements Policy.
func (d *DRRIP) OnFill(setIdx int, set []Line, way int, in *arch.Access) {
	if d.duel.useA(setIdx) {
		d.s.OnFill(setIdx, set, way, in)
	} else {
		d.b.OnFill(setIdx, set, way, in)
	}
}

// OnHit implements Policy.
func (*DRRIP) OnHit(_ int, set []Line, way int, _ *arch.Access) { set[way].RRPV = rrpvNear }

// OnEvict implements Policy.
func (*DRRIP) OnEvict(int, []Line, int) {}

// TDRRIP is the translation-aware DRRIP of Vasudha & Panda (ISPASS'22):
// blocks holding PTEs are inserted with near-immediate re-reference
// (protected), demand blocks whose own translation missed in the STLB are
// inserted distant (evicted first), and everything else follows DRRIP.
// It does not distinguish instruction PTEs from data PTEs — the
// limitation iTP+xPTP targets.
type TDRRIP struct {
	DRRIP
}

// NewTDRRIP returns a T-DRRIP policy.
func NewTDRRIP(sets int, seed uint64) *TDRRIP {
	return &TDRRIP{DRRIP: *NewDRRIP(sets, seed)}
}

// Name implements Policy.
func (*TDRRIP) Name() string { return "tdrrip" }

// OnFill implements Policy.
func (t *TDRRIP) OnFill(setIdx int, set []Line, way int, in *arch.Access) {
	switch {
	case set[way].IsPTE:
		set[way].RRPV = rrpvNear
	case set[way].STLBMiss:
		set[way].RRPV = rrpvMax
	default:
		t.DRRIP.OnFill(setIdx, set, way, in)
	}
}

// Victim implements Policy: T-DRRIP prefers victims among blocks brought
// in by STLB-missing demand loads when one is available at distant RRPV.
func (t *TDRRIP) Victim(setIdx int, set []Line, in *arch.Access) int {
	t.duel.onMiss(setIdx)
	if w := InvalidWay(set); w >= 0 {
		return w
	}
	for {
		// First preference: distant blocks from STLB-missing loads.
		for i := range set {
			if set[i].RRPV >= rrpvMax && set[i].STLBMiss && !set[i].IsPTE {
				return i
			}
		}
		// Then any distant non-PTE block.
		for i := range set {
			if set[i].RRPV >= rrpvMax && !set[i].IsPTE {
				return i
			}
		}
		// Then any distant block.
		for i := range set {
			if set[i].RRPV >= rrpvMax {
				return i
			}
		}
		for i := range set {
			set[i].RRPV++
		}
	}
}
