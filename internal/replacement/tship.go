package replacement

import "itpsim/internal/arch"

// TSHiP is the translation-aware SHiP of Vasudha & Panda (ISPASS'22),
// the LLC companion of T-DRRIP ("T-DRRIP+T-SHiP" in the paper's related
// work): SHiP's signature-based insertion, with two translation-aware
// overrides — blocks holding PTEs are inserted with near-immediate
// re-reference (protected), and demand blocks whose triggering access
// missed in the STLB are inserted distant regardless of their signature.
type TSHiP struct {
	SHiP
}

// NewTSHiP returns a T-SHiP policy.
func NewTSHiP(sets int, seed uint64) *TSHiP {
	return &TSHiP{SHiP: *NewSHiP(sets, seed)}
}

// Name implements Policy.
func (*TSHiP) Name() string { return "tship" }

// OnFill implements Policy.
func (t *TSHiP) OnFill(setIdx int, set []Line, way int, in *arch.Access) {
	switch {
	case set[way].IsPTE:
		sig := t.signature(in.PC)
		set[way].Sig = sig
		set[way].Reused = false
		set[way].RRPV = rrpvNear
	case set[way].STLBMiss:
		sig := t.signature(in.PC)
		set[way].Sig = sig
		set[way].Reused = false
		set[way].RRPV = rrpvMax
	default:
		t.SHiP.OnFill(setIdx, set, way, in)
	}
}

// Victim implements Policy: like T-DRRIP, prefer distant blocks from
// STLB-missing demand accesses and avoid PTE blocks while any
// alternative exists.
func (t *TSHiP) Victim(setIdx int, set []Line, in *arch.Access) int {
	if w := InvalidWay(set); w >= 0 {
		return w
	}
	for {
		for i := range set {
			if set[i].RRPV >= rrpvMax && set[i].STLBMiss && !set[i].IsPTE {
				return i
			}
		}
		for i := range set {
			if set[i].RRPV >= rrpvMax && !set[i].IsPTE {
				return i
			}
		}
		for i := range set {
			if set[i].RRPV >= rrpvMax {
				return i
			}
		}
		for i := range set {
			set[i].RRPV++
		}
	}
}
