package replacement

import (
	"math/rand"
	"testing"
	"testing/quick"

	"itpsim/internal/arch"
)

func newSet(ways int) []Line {
	set := make([]Line, ways)
	InitSet(set)
	return set
}

func fillAll(set []Line) {
	for i := range set {
		set[i].Valid = true
		set[i].Tag = uint64(1000 + i)
	}
}

func TestInitSetInvariant(t *testing.T) {
	for _, ways := range []int{1, 2, 8, 12, 16} {
		set := newSet(ways)
		if !CheckStackInvariant(set) {
			t.Errorf("ways=%d: InitSet broke invariant", ways)
		}
	}
}

func TestInvalidWayPrefersDeepest(t *testing.T) {
	set := newSet(4)
	// all invalid: deepest stack position is way with Stack==3.
	w := InvalidWay(set)
	if set[w].Stack != 3 {
		t.Errorf("InvalidWay picked stack pos %d, want 3", set[w].Stack)
	}
	fillAll(set)
	if InvalidWay(set) != -1 {
		t.Error("full set should report no invalid way")
	}
	set[1].Valid = false
	if got := InvalidWay(set); got != 1 {
		t.Errorf("InvalidWay = %d, want 1", got)
	}
}

func TestMoveToStackPos(t *testing.T) {
	set := newSet(4) // stacks: 0,1,2,3
	MoveToStackPos(set, 3, 0)
	if set[3].Stack != 0 {
		t.Errorf("way3 stack = %d, want 0", set[3].Stack)
	}
	// others shifted down: way0→1, way1→2, way2→3
	if set[0].Stack != 1 || set[1].Stack != 2 || set[2].Stack != 3 {
		t.Errorf("shift wrong: %v %v %v", set[0].Stack, set[1].Stack, set[2].Stack)
	}
	if !CheckStackInvariant(set) {
		t.Error("invariant broken")
	}
	// Move down: way3 (pos 0) to pos 2.
	MoveToStackPos(set, 3, 2)
	if set[3].Stack != 2 || !CheckStackInvariant(set) {
		t.Errorf("downward move wrong: %+v", set)
	}
	// No-op move.
	MoveToStackPos(set, 3, 2)
	if set[3].Stack != 2 || !CheckStackInvariant(set) {
		t.Error("no-op move broke invariant")
	}
}

// Property: arbitrary sequences of moves preserve the permutation invariant.
func TestMoveInvariantProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		set := newSet(12)
		for _, op := range ops {
			way := int(op) % 12
			pos := int(op>>4) % 12
			MoveToStackPos(set, way, pos)
			if !CheckStackInvariant(set) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStackPosOf(t *testing.T) {
	set := newSet(4)
	for pos := 0; pos < 4; pos++ {
		w := StackPosOf(set, pos)
		if w < 0 || int(set[w].Stack) != pos {
			t.Errorf("StackPosOf(%d) wrong", pos)
		}
	}
	if StackPosOf(set, 99) != -1 {
		t.Error("missing pos should return -1")
	}
}

func TestLRUBehaviour(t *testing.T) {
	p := NewLRU()
	set := newSet(4)
	fillAll(set)
	acc := &arch.Access{Kind: arch.Load}
	// Touch ways in order 0,1,2,3: way 0 becomes LRU.
	for w := 0; w < 4; w++ {
		p.OnHit(0, set, w, acc)
	}
	if v := p.Victim(0, set, acc); v != 0 {
		t.Errorf("LRU victim = %d, want 0", v)
	}
	p.OnFill(0, set, 0, acc)
	if set[0].Stack != 0 {
		t.Error("fill should move to MRU")
	}
	if v := p.Victim(0, set, acc); v != 1 {
		t.Errorf("next victim = %d, want 1", v)
	}
}

func TestLRUPrefersInvalid(t *testing.T) {
	p := NewLRU()
	set := newSet(4)
	fillAll(set)
	set[2].Valid = false
	if v := p.Victim(0, set, nil); v != 2 {
		t.Errorf("victim = %d, want invalid way 2", v)
	}
}

func TestRandomDeterministic(t *testing.T) {
	set := newSet(8)
	fillAll(set)
	a := NewRandom(42)
	b := NewRandom(42)
	for i := 0; i < 50; i++ {
		if a.Victim(0, set, nil) != b.Victim(0, set, nil) {
			t.Fatal("same seed should give same victims")
		}
	}
}

func TestRandomCoversWays(t *testing.T) {
	set := newSet(4)
	fillAll(set)
	p := NewRandom(7)
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		seen[p.Victim(0, set, nil)] = true
	}
	if len(seen) != 4 {
		t.Errorf("random victims covered %d/4 ways", len(seen))
	}
}

func TestSRRIP(t *testing.T) {
	p := NewSRRIP()
	set := newSet(4)
	fillAll(set)
	acc := &arch.Access{Kind: arch.Load, PC: 100}
	for w := range set {
		p.OnFill(0, set, w, acc)
	}
	// All at long (2); victim search ages everyone to 3 and picks way 0.
	if v := p.Victim(0, set, acc); v != 0 {
		t.Errorf("victim = %d, want 0", v)
	}
	if set[1].RRPV != rrpvMax {
		t.Errorf("aging did not raise RRPVs: %d", set[1].RRPV)
	}
	p.OnHit(0, set, 2, acc)
	if set[2].RRPV != rrpvNear {
		t.Error("hit should reset RRPV")
	}
	// Now way 2 is protected; victim must not be 2.
	if v := p.Victim(0, set, acc); v == 2 {
		t.Error("protected way evicted")
	}
}

func TestBRRIPMostlyDistant(t *testing.T) {
	p := NewBRRIP(1)
	set := newSet(4)
	fillAll(set)
	acc := &arch.Access{}
	distant := 0
	for i := 0; i < 1000; i++ {
		p.OnFill(0, set, 0, acc)
		if set[0].RRPV == rrpvMax {
			distant++
		}
	}
	if distant < 900 {
		t.Errorf("BRRIP distant insertions = %d/1000, want >900", distant)
	}
	if distant == 1000 {
		t.Error("BRRIP should occasionally insert long")
	}
}

func TestDuelLeadersDisjoint(t *testing.T) {
	d := newDuel(1024)
	for s := range d.leaderA {
		if d.leaderB[s] {
			t.Fatalf("set %d leads both policies", s)
		}
	}
	if len(d.leaderA) == 0 || len(d.leaderB) == 0 {
		t.Fatal("no leader sets")
	}
}

func TestDuelPSELMovement(t *testing.T) {
	d := newDuel(1024)
	var aLeader, bLeader int
	for s := range d.leaderA {
		aLeader = s
		break
	}
	for s := range d.leaderB {
		bLeader = s
		break
	}
	start := d.psel
	d.onMiss(aLeader)
	if d.psel != start+1 {
		t.Error("miss in A-leader should increment PSEL")
	}
	d.onMiss(bLeader)
	if d.psel != start {
		t.Error("miss in B-leader should decrement PSEL")
	}
	// Saturate low: followers should use A.
	for i := 0; i < 2000; i++ {
		d.onMiss(bLeader)
	}
	if d.psel != 0 {
		t.Errorf("PSEL should saturate at 0, got %d", d.psel)
	}
	follower := 3 // not a leader with stride 16
	if d.leaderA[follower] || d.leaderB[follower] {
		t.Skip("set 3 unexpectedly a leader")
	}
	if !d.useA(follower) {
		t.Error("PSEL=0 followers should use policy A")
	}
}

func TestDRRIPFollowsWinner(t *testing.T) {
	p := NewDRRIP(64, 3)
	set := newSet(4)
	fillAll(set)
	acc := &arch.Access{}
	// Force PSEL to favour SRRIP (policy A) by missing in B leaders.
	var bLeader int
	for s := range p.duel.leaderB {
		bLeader = s
		break
	}
	for i := 0; i < 2000; i++ {
		p.duel.onMiss(bLeader)
	}
	follower := -1
	for s := 0; s < 64; s++ {
		if !p.duel.leaderA[s] && !p.duel.leaderB[s] {
			follower = s
			break
		}
	}
	if follower == -1 {
		t.Fatal("no follower set found")
	}
	p.OnFill(follower, set, 0, acc)
	if set[0].RRPV != rrpvLong {
		t.Errorf("follower should use SRRIP insertion, got RRPV %d", set[0].RRPV)
	}
}

func TestTDRRIPProtectsPTEs(t *testing.T) {
	p := NewTDRRIP(64, 9)
	set := newSet(4)
	fillAll(set)
	acc := &arch.Access{Kind: arch.PTW}
	set[1].IsPTE = true
	p.OnFill(0, set, 1, acc)
	if set[1].RRPV != rrpvNear {
		t.Errorf("PTE insertion RRPV = %d, want %d", set[1].RRPV, rrpvNear)
	}
	// Demand block that missed the STLB inserts distant.
	set[2].STLBMiss = true
	set[2].IsPTE = false
	p.OnFill(0, set, 2, &arch.Access{Kind: arch.Load})
	if set[2].RRPV != rrpvMax {
		t.Errorf("STLB-miss insertion RRPV = %d, want %d", set[2].RRPV, rrpvMax)
	}
	// Victim prefers the STLB-miss block over the PTE block.
	if v := p.Victim(0, set, &arch.Access{}); v != 2 {
		t.Errorf("victim = %d, want the STLB-miss block 2", v)
	}
}

func TestTDRRIPAllPTEsStillEvicts(t *testing.T) {
	p := NewTDRRIP(64, 9)
	set := newSet(4)
	fillAll(set)
	for i := range set {
		set[i].IsPTE = true
		set[i].RRPV = rrpvNear
	}
	v := p.Victim(0, set, &arch.Access{})
	if v < 0 || v >= 4 {
		t.Fatalf("victim out of range: %d", v)
	}
}

func TestSHiPLearnsDeadSignatures(t *testing.T) {
	p := NewSHiP(64, 5)
	set := newSet(4)
	fillAll(set)
	deadPC := uint64(0xdead00)
	acc := &arch.Access{Kind: arch.Load, PC: deadPC}
	// Repeatedly fill and evict without reuse: counter should reach 0.
	for i := 0; i < 10; i++ {
		p.OnFill(0, set, 0, acc)
		p.OnEvict(0, set, 0)
	}
	p.OnFill(0, set, 0, acc)
	if set[0].RRPV != rrpvMax {
		t.Errorf("dead signature should insert distant, got RRPV %d", set[0].RRPV)
	}
	// Now train reuse: hit after fill.
	for i := 0; i < 10; i++ {
		p.OnFill(0, set, 0, acc)
		p.OnHit(0, set, 0, acc)
	}
	p.OnFill(0, set, 0, acc)
	if set[0].RRPV != rrpvLong {
		t.Errorf("reused signature should insert long, got RRPV %d", set[0].RRPV)
	}
}

func TestSHiPHitTrainsOnce(t *testing.T) {
	p := NewSHiP(64, 5)
	set := newSet(2)
	fillAll(set)
	acc := &arch.Access{PC: 0x1234}
	p.OnFill(0, set, 0, acc)
	sig := set[0].Sig
	before := p.shct[sig]
	p.OnHit(0, set, 0, acc)
	p.OnHit(0, set, 0, acc)
	p.OnHit(0, set, 0, acc)
	if p.shct[sig] != before+1 {
		t.Errorf("multiple hits should train once: %d -> %d", before, p.shct[sig])
	}
}

func TestMockingjayVictimIsFarthest(t *testing.T) {
	p := NewMockingjay(64, 4)
	set := newSet(4)
	fillAll(set)
	p.clock = 100
	set[0].ETA = 110
	set[1].ETA = 500 // farthest future
	set[2].ETA = 120
	set[3].ETA = 105
	if v := p.Victim(0, set, nil); v != 1 {
		t.Errorf("victim = %d, want 1 (farthest ETA)", v)
	}
}

func TestMockingjayPrefersOverdue(t *testing.T) {
	p := NewMockingjay(64, 4)
	set := newSet(4)
	fillAll(set)
	p.clock = 10000
	// Way 2 is long overdue (predicted reuse never happened).
	set[0].ETA = 10010
	set[1].ETA = 10020
	set[2].ETA = 100
	set[3].ETA = 10005
	if v := p.Victim(0, set, nil); v != 2 {
		t.Errorf("victim = %d, want overdue way 2", v)
	}
}

func TestMockingjayTrains(t *testing.T) {
	p := NewMockingjay(64, 4)
	sig := p.signature(0xabc)
	start := p.pred[sig]
	// Train toward a small reuse distance.
	for i := 0; i < 50; i++ {
		p.train(sig, 10)
	}
	if p.pred[sig] >= start {
		t.Errorf("training down failed: %d -> %d", start, p.pred[sig])
	}
	for i := 0; i < 200; i++ {
		p.train(sig, -1) // scans
	}
	if p.pred[sig] < p.maxRD/2 {
		t.Errorf("scan training should push prediction up: %d", p.pred[sig])
	}
}

func TestMockingjaySamplerBounded(t *testing.T) {
	p := NewMockingjay(64, 4)
	for i := 0; i < 3*mjSamplerCap; i++ {
		p.clock++
		p.sample(0, uint64(i)*64, uint64(i))
	}
	if len(p.sampler) > mjSamplerCap {
		t.Errorf("sampler grew to %d (> %d)", len(p.sampler), mjSamplerCap)
	}
}

func TestMockingjaySamplerObservesReuse(t *testing.T) {
	p := NewMockingjay(64, 4)
	pc := uint64(0x4040)
	sig := p.signature(pc)
	p.clock = 1
	p.sample(0, 0x1000, pc)
	p.clock = 21
	p.sample(0, 0x1000, pc) // reuse distance 20
	want := p.maxRD/2 + (20-p.maxRD/2)/4
	if p.pred[sig] != want {
		t.Errorf("pred = %d, want %d", p.pred[sig], want)
	}
}

func TestPTPProtectsAllPTEs(t *testing.T) {
	p := NewPTP()
	set := newSet(4)
	fillAll(set)
	set[0].IsPTE = true
	set[0].IsDataPTE = true
	set[3].IsPTE = true
	// Recency order: touch 1 then 2 → way at stack bottom among non-PTE.
	acc := &arch.Access{}
	p.OnHit(0, set, 2, acc)
	p.OnHit(0, set, 1, acc)
	v := p.Victim(0, set, acc)
	if set[v].IsPTE {
		t.Errorf("PTP evicted a PTE block (way %d)", v)
	}
	if v != 2 {
		t.Errorf("victim = %d, want LRU non-PTE way 2", v)
	}
}

func TestPTPAllPTEFallsBackToLRU(t *testing.T) {
	p := NewPTP()
	set := newSet(4)
	fillAll(set)
	for i := range set {
		set[i].IsPTE = true
	}
	v := p.Victim(0, set, nil)
	if int(set[v].Stack) != 3 {
		t.Errorf("all-PTE set should evict LRU, got stack %d", set[v].Stack)
	}
}

func TestFromName(t *testing.T) {
	names := []string{"lru", "random", "srrip", "brrip", "drrip", "ship", "mockingjay", "ptp", "tdrrip"}
	for _, n := range names {
		p, err := FromName(n, 64, 8, 1)
		if err != nil {
			t.Errorf("FromName(%q): %v", n, err)
			continue
		}
		if p.Name() != n {
			t.Errorf("FromName(%q).Name() = %q", n, p.Name())
		}
	}
	if _, err := FromName("belady", 64, 8, 1); err == nil {
		t.Error("unknown policy should error")
	}
}

// Property: every policy returns a victim inside the set and never panics
// under random operation sequences.
func TestPoliciesRobustUnderRandomOps(t *testing.T) {
	names := []string{"lru", "random", "srrip", "brrip", "drrip", "ship", "mockingjay", "hawkeye", "ptp", "tdrrip", "tship", "emissary"}
	for _, n := range names {
		p, err := FromName(n, 64, 8, 123)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(99))
		sets := make([][]Line, 64)
		for i := range sets {
			sets[i] = newSet(8)
		}
		for op := 0; op < 5000; op++ {
			si := rng.Intn(64)
			set := sets[si]
			acc := &arch.Access{
				PC:       uint64(rng.Intn(1000)) * 4,
				Kind:     arch.Kind(rng.Intn(4)),
				Class:    arch.Class(rng.Intn(2)),
				IsPTE:    rng.Intn(4) == 0,
				STLBMiss: rng.Intn(4) == 0,
			}
			v := p.Victim(si, set, acc)
			if v < 0 || v >= 8 {
				t.Fatalf("%s: victim %d out of range", n, v)
			}
			p.OnEvict(si, set, v)
			set[v].Valid = true
			set[v].Tag = uint64(rng.Intn(500))
			set[v].IsPTE = acc.IsPTE
			set[v].IsDataPTE = acc.IsPTE && acc.Class == arch.DataClass
			set[v].STLBMiss = acc.STLBMiss
			set[v].Reused = false
			p.OnFill(si, set, v, acc)
			if rng.Intn(2) == 0 {
				p.OnHit(si, set, rng.Intn(8), acc)
			}
			if !CheckStackInvariant(set) {
				t.Fatalf("%s: stack invariant broken at op %d", n, op)
			}
		}
	}
}
