package replacement

import (
	"math/rand"
	"testing"

	"itpsim/internal/arch"
)

// setModel is a minimal fully-associative cache set driven through the
// Policy interface — the harness the property tests exercise policies
// against, independent of the cache machinery.
type setModel struct {
	p   Policy
	set []Line
}

func newSetModel(p Policy, ways int) *setModel {
	m := &setModel{p: p, set: make([]Line, ways)}
	InitSet(m.set)
	return m
}

// access touches tag, filling on miss exactly like cache.Cache does.
func (m *setModel) access(tag uint64) {
	acc := &arch.Access{Addr: arch.Addr(tag << 6)}
	for i := range m.set {
		if m.set[i].Valid && m.set[i].Tag == tag {
			m.p.OnHit(0, m.set, i, acc)
			return
		}
	}
	way := m.p.Victim(0, m.set, acc)
	if m.set[way].Valid {
		m.p.OnEvict(0, m.set, way)
	}
	m.set[way] = Line{Valid: true, Tag: tag, Stack: m.set[way].Stack}
	m.p.OnFill(0, m.set, way, acc)
}

func (m *setModel) contains(tag uint64) bool {
	for i := range m.set {
		if m.set[i].Valid && m.set[i].Tag == tag {
			return true
		}
	}
	return false
}

// TestLRUStackInclusion checks the defining property of stack algorithms
// (Mattson et al.): under any access stream, the contents of a smaller
// LRU cache are a subset of a larger one's. A policy bug that breaks
// recency ordering almost always breaks inclusion.
func TestLRUStackInclusion(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		small := newSetModel(NewLRU(), 4)
		large := newSetModel(NewLRU(), 8)
		for step := 0; step < 2000; step++ {
			tag := uint64(rng.Intn(24)) // working set ~3x the small cache
			small.access(tag)
			large.access(tag)
			if !CheckStackInvariant(small.set) || !CheckStackInvariant(large.set) {
				t.Fatalf("trial %d step %d: stack invariant broken", trial, step)
			}
			for i := range small.set {
				if small.set[i].Valid && !large.contains(small.set[i].Tag) {
					t.Fatalf("trial %d step %d: tag %d in 4-way but not 8-way LRU (inclusion violated)",
						trial, step, small.set[i].Tag)
				}
			}
		}
	}
}

// TestPoliciesPreserveStackInvariant fuzzes every stack-based baseline
// with random hit/miss streams and checks the position permutation never
// corrupts, and Victim never points outside the set.
func TestPoliciesPreserveStackInvariant(t *testing.T) {
	for _, name := range []string{"lru", "random", "ptp", "emissary"} {
		name := name
		t.Run(name, func(t *testing.T) {
			p, err := FromName(name, 1, 8, 42)
			if err != nil {
				t.Fatal(err)
			}
			m := newSetModel(p, 8)
			rng := rand.New(rand.NewSource(7))
			for step := 0; step < 5000; step++ {
				m.access(uint64(rng.Intn(20)))
				if !CheckStackInvariant(m.set) {
					t.Fatalf("step %d: stack invariant broken", step)
				}
			}
		})
	}
}

// TestVictimAlwaysInRange drives every named policy (stack-based or not)
// through random streams, asserting Victim stays in [0, ways) — the
// contract the cache indexes with, unchecked at runtime.
func TestVictimAlwaysInRange(t *testing.T) {
	names := []string{"lru", "random", "srrip", "brrip", "drrip", "ship",
		"mockingjay", "hawkeye", "ptp", "tdrrip", "tship", "emissary"}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			const ways = 8
			p, err := FromName(name, 16, ways, 99)
			if err != nil {
				t.Fatal(err)
			}
			set := make([]Line, ways)
			InitSet(set)
			rng := rand.New(rand.NewSource(3))
			for step := 0; step < 3000; step++ {
				tag := uint64(rng.Intn(32))
				acc := &arch.Access{Addr: arch.Addr(tag << 6), PC: uint64(rng.Intn(8) * 4)}
				hit := -1
				for i := range set {
					if set[i].Valid && set[i].Tag == tag {
						hit = i
						break
					}
				}
				if hit >= 0 {
					p.OnHit(0, set, hit, acc)
					continue
				}
				way := p.Victim(0, set, acc)
				if way < 0 || way >= ways {
					t.Fatalf("step %d: victim %d out of range [0,%d)", step, way, ways)
				}
				if set[way].Valid {
					p.OnEvict(0, set, way)
				}
				set[way] = Line{
					Valid: true, Tag: tag, Stack: set[way].Stack,
					RRPV: set[way].RRPV, Sig: set[way].Sig, ETA: set[way].ETA,
					IsPTE:     rng.Intn(8) == 0,
					IsDataPTE: rng.Intn(16) == 0,
					STLBMiss:  rng.Intn(4) == 0,
				}
				p.OnFill(0, set, way, acc)
			}
		})
	}
}
