package replacement

import "itpsim/internal/arch"

// PTP is Page Table Prioritization (Park et al., ASPLOS'22 "Every walk's
// a hit"): an LRU-based policy that refuses to evict cache blocks holding
// PTEs while any non-PTE block exists in the set, so page walks become
// (near-)single-access cache hits. Unlike xPTP it protects *all* PTE
// blocks — instruction and data alike — and has no pressure-adaptive
// escape hatch, the two limitations Section 2.2 calls out.
type PTP struct{}

// NewPTP returns the PTP policy.
func NewPTP() *PTP { return &PTP{} }

// Name implements Policy.
func (*PTP) Name() string { return "ptp" }

// Victim implements Policy: the LRU block among non-PTE blocks; if the
// whole set holds PTEs, plain LRU.
func (*PTP) Victim(_ int, set []Line, _ *arch.Access) int {
	if w := InvalidWay(set); w >= 0 {
		return w
	}
	victim, deepest := -1, -1
	for i := range set {
		if set[i].IsPTE {
			continue
		}
		if int(set[i].Stack) > deepest {
			victim, deepest = i, int(set[i].Stack)
		}
	}
	if victim >= 0 {
		return victim
	}
	return StackLRUVictim(set)
}

// OnFill implements Policy: LRU insertion, with PTE blocks inserted at MRU.
func (*PTP) OnFill(_ int, set []Line, way int, _ *arch.Access) {
	MoveToStackPos(set, way, 0)
}

// OnHit implements Policy.
func (*PTP) OnHit(_ int, set []Line, way int, _ *arch.Access) {
	MoveToStackPos(set, way, 0)
}

// OnEvict implements Policy.
func (*PTP) OnEvict(int, []Line, int) {}
