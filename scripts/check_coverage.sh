#!/bin/sh
# check_coverage.sh — enforce per-package test-coverage floors.
#
# Runs `go test -cover` over ./internal/... and compares each package's
# statement coverage against scripts/coverage_floors.tsv. Exits non-zero
# when any package is below its floor or a floored package's tests fail.
#
# Usage: scripts/check_coverage.sh [go-test-args...]
set -u

cd "$(dirname "$0")/.." || exit 1

floors=scripts/coverage_floors.tsv
out=$(go test -cover "$@" ./internal/... 2>&1)
status=$?
echo "$out"
if [ $status -ne 0 ]; then
    echo "check_coverage: go test failed" >&2
    exit $status
fi

fail=0
while IFS="$(printf '\t')" read -r pkg floor; do
    case "$pkg" in
    ''|'#'*) continue ;;
    esac
    line=$(echo "$out" | grep "[[:space:]]$pkg[[:space:]]")
    if [ -z "$line" ]; then
        echo "check_coverage: FAIL $pkg: no coverage line (package removed or tests skipped?)" >&2
        fail=1
        continue
    fi
    cov=$(echo "$line" | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p')
    if [ -z "$cov" ]; then
        echo "check_coverage: FAIL $pkg: could not parse coverage from: $line" >&2
        fail=1
        continue
    fi
    below=$(awk "BEGIN{print ($cov < $floor) ? 1 : 0}")
    if [ "$below" = 1 ]; then
        echo "check_coverage: FAIL $pkg: ${cov}% < floor ${floor}%" >&2
        fail=1
    fi
done < "$floors"

if [ $fail -ne 0 ]; then
    echo "check_coverage: coverage regression — raise tests or (deliberately) lower scripts/coverage_floors.tsv" >&2
    exit 1
fi
echo "check_coverage: all packages at or above their floors"
