package itpsim

// Benchmark targets regenerating the paper's tables and figures (one per
// experiment, per DESIGN.md's index) plus ablation benches for the design
// parameters and micro-benchmarks of the substrate. Figure benches run
// the corresponding experiment at a reduced scale and report the headline
// number as a custom metric; use cmd/itpbench for full-scale runs.

import (
	"runtime"
	"strconv"
	"testing"
	"time"

	"itpsim/internal/arch"
	"itpsim/internal/cache"
	"itpsim/internal/config"
	"itpsim/internal/core"
	"itpsim/internal/experiments"
	"itpsim/internal/harness"
	"itpsim/internal/metrics"
	"itpsim/internal/replacement"
	"itpsim/internal/sample"
	"itpsim/internal/shard"
	"itpsim/internal/sim"
	"itpsim/internal/tlb"
	"itpsim/internal/workload"
)

// benchOptions is the reduced scale used by the figure benches.
func benchOptions() experiments.Options {
	return experiments.Options{
		ServerWorkloads:     2,
		SpecWorkloads:       2,
		SMTPairsPerCategory: 1,
		Warmup:              100_000,
		Measure:             200_000,
	}
}

// runFigure executes one experiment per iteration and reports the mean of
// its row values as "value".
func runFigure(b *testing.B, id string) {
	b.Helper()
	var last float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id, benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		sum := 0.0
		for _, r := range res.Rows {
			sum += r.Value
		}
		if len(res.Rows) > 0 {
			last = sum / float64(len(res.Rows))
		}
	}
	b.ReportMetric(last, "mean-value")
}

func BenchmarkFig1ITLBSweep(b *testing.B)        { runFigure(b, "fig1") }
func BenchmarkFig2InstrMPKI(b *testing.B)        { runFigure(b, "fig2") }
func BenchmarkFig3ProbLRU(b *testing.B)          { runFigure(b, "fig3") }
func BenchmarkFig4MPKIBreakdown(b *testing.B)    { runFigure(b, "fig4") }
func BenchmarkFig8Single(b *testing.B)           { runFigure(b, "fig8a") }
func BenchmarkFig8SMT(b *testing.B)              { runFigure(b, "fig8b") }
func BenchmarkFig9MissProfile(b *testing.B)      { runFigure(b, "fig9") }
func BenchmarkFig10STLBBreakdown(b *testing.B)   { runFigure(b, "fig10") }
func BenchmarkFig11LLCPolicies(b *testing.B)     { runFigure(b, "fig11") }
func BenchmarkFig12ITLBSensitivity(b *testing.B) { runFigure(b, "fig12") }
func BenchmarkFig13HugePages(b *testing.B)       { runFigure(b, "fig13") }
func BenchmarkFig14SplitSTLB(b *testing.B)       { runFigure(b, "fig14") }
func BenchmarkExt1Extensions(b *testing.B)       { runFigure(b, "ext1") }

// benchIPC runs one workload under one config and returns IPC.
func benchIPC(b *testing.B, cfg config.SystemConfig, name string) float64 {
	b.Helper()
	cat := workload.NewCatalog(8, 2)
	spec, err := cat.Get(name)
	if err != nil {
		b.Fatal(err)
	}
	m, err := sim.NewMachine(cfg)
	if err != nil {
		b.Fatal(err)
	}
	p := workload.Prefetch(spec.NewStream())
	defer p.Close()
	res, err := m.RunWarmup([]workload.Stream{p}, 100_000, 200_000)
	if err != nil {
		b.Fatal(err)
	}
	return res.IPC
}

// Ablation benches sweep the design parameters DESIGN.md calls out.

func BenchmarkAblationITPParamN(b *testing.B) {
	for _, n := range []int{1, 2, 4, 6} {
		b.Run("N="+itoa(n), func(b *testing.B) {
			var ipc float64
			for i := 0; i < b.N; i++ {
				cfg := config.Default()
				cfg.STLBPolicy = "itp"
				cfg.ITP.N = n
				cfg.ITP.M = n + 4
				ipc = benchIPC(b, cfg, "srv_000")
			}
			b.ReportMetric(ipc, "ipc")
		})
	}
}

func BenchmarkAblationXPTPK(b *testing.B) {
	for _, k := range []int{2, 4, 6, 8} {
		b.Run("K="+itoa(k), func(b *testing.B) {
			var ipc float64
			for i := 0; i < b.N; i++ {
				cfg := config.Default()
				cfg.STLBPolicy = "itp"
				cfg.L2CPolicy = "xptp"
				cfg.XPTP.K = k
				ipc = benchIPC(b, cfg, "srv_007")
			}
			b.ReportMetric(ipc, "ipc")
		})
	}
}

func BenchmarkAblationAdaptiveT1(b *testing.B) {
	for _, t1 := range []int{0, 4, 8, 32} {
		b.Run("T1="+itoa(t1), func(b *testing.B) {
			var ipc float64
			for i := 0; i < b.N; i++ {
				cfg := config.Default()
				cfg.STLBPolicy = "itp"
				cfg.L2CPolicy = "xptp"
				cfg.XPTP.T1 = t1
				ipc = benchIPC(b, cfg, "srv_007")
			}
			b.ReportMetric(ipc, "ipc")
		})
	}
}

func BenchmarkAblationFreqBits(b *testing.B) {
	for _, bits := range []int{1, 2, 3, 4} {
		b.Run("bits="+itoa(bits), func(b *testing.B) {
			var ipc float64
			for i := 0; i < b.N; i++ {
				cfg := config.Default()
				cfg.STLBPolicy = "itp"
				cfg.ITP.FreqBits = bits
				ipc = benchIPC(b, cfg, "srv_000")
			}
			b.ReportMetric(ipc, "ipc")
		})
	}
}

// Substrate micro-benchmarks.

func BenchmarkSimulatorThroughput(b *testing.B) {
	cat := workload.NewCatalog(4, 2)
	spec, _ := cat.Get("srv_000")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, _ := sim.NewMachine(config.Default())
		p := workload.Prefetch(spec.NewStream())
		m.Run([]workload.Stream{p}, 100_000)
		p.Close()
	}
	b.ReportMetric(float64(100_000*b.N)/b.Elapsed().Seconds(), "instr/s")
}

// BenchmarkSimulatorThroughputMetrics is the instrumented twin of
// BenchmarkSimulatorThroughput: full registry attached, per-1000-instr
// windows closing. The benchguard comparison of this pair is the
// instrumentation-overhead regression gate.
func BenchmarkSimulatorThroughputMetrics(b *testing.B) {
	cat := workload.NewCatalog(4, 2)
	spec, _ := cat.Get("srv_000")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, _ := sim.NewMachine(config.Default())
		w := m.InstrumentMetrics(metrics.NewRegistry(), 0)
		w.SetRetain(64)
		p := workload.Prefetch(spec.NewStream())
		m.Run([]workload.Stream{p}, 100_000)
		p.Close()
	}
	b.ReportMetric(float64(100_000*b.N)/b.Elapsed().Seconds(), "instr/s")
}

// simRunSeconds times one fresh 60k-instruction run, instrumented or not.
func simRunSeconds(b testing.TB, instrument bool, spec workload.Spec) float64 {
	m, err := sim.NewMachine(config.Default())
	if err != nil {
		b.Fatal(err)
	}
	if instrument {
		w := m.InstrumentMetrics(metrics.NewRegistry(), 0)
		w.SetRetain(64)
	}
	p := workload.Prefetch(spec.NewStream())
	defer p.Close()
	start := time.Now()
	if _, err := m.Run([]workload.Stream{p}, 60_000); err != nil {
		b.Fatal(err)
	}
	return time.Since(start).Seconds()
}

// TestInstrumentationOverheadBudget enforces the observability design
// budget: a fully instrumented simulation must run within 5% of the
// uninstrumented baseline (whose nil-safe counters ARE the no-op
// registry). Timings interleave baseline/instrumented pairs and take the
// minimum of several runs to damp scheduler noise; the test retries
// before declaring a regression so CI jitter cannot fail the build while
// a real hot-path regression still does.
func TestInstrumentationOverheadBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	if raceEnabled {
		t.Skip("race-detector instrumentation distorts the timing budget")
	}
	cat := workload.NewCatalog(4, 2)
	spec, err := cat.Get("srv_000")
	if err != nil {
		t.Fatal(err)
	}
	// Warm both paths once (page-cache, JIT-ish first-touch effects).
	simRunSeconds(t, false, spec)
	simRunSeconds(t, true, spec)

	const budget = 1.05
	var lastRatio float64
	for attempt := 0; attempt < 5; attempt++ {
		base, inst := 1e9, 1e9
		for rep := 0; rep < 4; rep++ {
			if v := simRunSeconds(t, false, spec); v < base {
				base = v
			}
			if v := simRunSeconds(t, true, spec); v < inst {
				inst = v
			}
		}
		lastRatio = inst / base
		if lastRatio <= budget {
			return
		}
	}
	t.Fatalf("instrumented run is %.1f%% slower than baseline across 5 attempts (budget 5%%)",
		100*(lastRatio-1))
}

// Sharded-run benchmarks: the same 2M-instruction logical run timed
// serially and as an 8-shard parallel plan. Warmup is 100k per shard, so
// the ideal wall-clock speedup is (W+N)/(W+N/K) ≈ 6× and the ≥5× target
// leaves room for scheduling overhead. BenchmarkShardedRun reports the
// measured speedup as a custom metric only when the host has enough
// cores to run all shards concurrently (GOMAXPROCS >= 8); benchguard's
// -metric-gate enforces the target where the metric is present and
// notes the skip elsewhere, so a 1-core builder cannot fail spuriously.
const (
	shardBenchShards  = 8
	shardBenchWarmup  = 100_000
	shardBenchMeasure = 2_000_000
)

// shardBenchSource returns the workload both run shapes time.
func shardBenchSource(b *testing.B) shard.Source {
	b.Helper()
	spec, err := workload.NewCatalog(8, 2).Get("srv_000")
	if err != nil {
		b.Fatal(err)
	}
	return shard.Source{Name: "srv_000", New: spec.NewStream}
}

// serialRunSeconds times the serial reference run once.
func serialRunSeconds(b *testing.B, src shard.Source) float64 {
	b.Helper()
	m, err := sim.NewMachine(config.Default())
	if err != nil {
		b.Fatal(err)
	}
	p := workload.Prefetch(src.New())
	defer p.Close()
	start := time.Now()
	if _, err := m.RunWarmup([]workload.Stream{p}, shardBenchWarmup, shardBenchMeasure); err != nil {
		b.Fatal(err)
	}
	return time.Since(start).Seconds()
}

func BenchmarkSerialRun(b *testing.B) {
	src := shardBenchSource(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		serialRunSeconds(b, src)
	}
	b.ReportMetric(float64(shardBenchMeasure)*float64(b.N)/b.Elapsed().Seconds(), "instr/s")
}

func BenchmarkShardedRun(b *testing.B) {
	src := shardBenchSource(b)
	ix := shard.NewIndex()
	cfg := shard.Config{
		System: config.Default(),
		Plan:   shard.Plan{Shards: shardBenchShards, Warmup: shardBenchWarmup, Measure: shardBenchMeasure},
	}
	run := func() {
		if _, err := shard.Run(cfg, "bench", src, ix, harness.Options{}); err != nil {
			b.Fatal(err)
		}
	}
	// Warm the split index outside the timed region: a policy sweep pays
	// the positioning pass once per workload, and that steady state is
	// what this benchmark regresses.
	run()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
	b.StopTimer()
	shardedSec := b.Elapsed().Seconds() / float64(b.N)
	b.ReportMetric(float64(shardBenchMeasure)/shardedSec, "instr/s")
	if runtime.GOMAXPROCS(0) >= shardBenchShards {
		b.ReportMetric(serialRunSeconds(b, src)/shardedSec, "speedup")
	}
}

// BenchmarkSampledRun times the same 2M-instruction logical run as a
// phase-sampled plan: 8 representatives of 50k instructions each, with a
// 50k functional + 50k detailed warmup, running in parallel. Against the
// serial run's 2.1M detailed instructions the sampled run simulates only
// 400k detailed + 400k functional spread over 8 cores, so the ideal
// speedup is well above the ≥10× benchguard target. The LRU-baseline
// profiling pre-pass is warmed outside the timed region: a policy sweep
// pays it once per workload (that amortisation is the sampling speedup
// story), and the steady state is what this benchmark regresses. Like
// BenchmarkShardedRun, the speedup metric is only reported on hosts with
// enough cores (GOMAXPROCS >= 8); benchguard's -metric-gate enforces the
// target where the metric is present.
func BenchmarkSampledRun(b *testing.B) {
	src := shardBenchSource(b)
	ix := shard.NewIndex()
	profiles := sample.NewProfiles()
	cfg := sample.Config{
		System:       config.Default(),
		Phases:       shardBenchShards,
		Window:       50_000,
		Warmup:       shardBenchWarmup,
		DetailWarmup: 50_000,
		Measure:      shardBenchMeasure,
	}
	run := func() {
		if _, err := sample.Run(cfg, "bench", src, ix, profiles, harness.Options{}); err != nil {
			b.Fatal(err)
		}
	}
	run()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
	b.StopTimer()
	sampledSec := b.Elapsed().Seconds() / float64(b.N)
	b.ReportMetric(float64(shardBenchMeasure)/sampledSec, "instr/s")
	if runtime.GOMAXPROCS(0) >= shardBenchShards {
		b.ReportMetric(serialRunSeconds(b, src)/sampledSec, "speedup")
	}
}

// BenchmarkMultiCoreRun times a whole 4-core co-location run — four
// tenant streams contending on the shared STLB/L2C/LLC/walker/DRAM with
// per-tenant stats attribution live — and reports aggregate simulated
// instruction throughput. The per-step allocation discipline of the CMP
// loop is gated separately by BenchmarkSteadyStateStepMultiCore in
// internal/sim.
func BenchmarkMultiCoreRun(b *testing.B) {
	const cores = 4
	cat := workload.NewCatalog(8, 2)
	names := cat.ServerNames()
	cfg := config.Default()
	cfg.Cores = cores
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := sim.NewMachine(cfg)
		if err != nil {
			b.Fatal(err)
		}
		streams := make([]workload.Stream, cores)
		for j := range streams {
			spec, err := cat.Get(names[j%len(names)])
			if err != nil {
				b.Fatal(err)
			}
			p := workload.Prefetch(spec.NewStream())
			defer p.Close()
			streams[j] = p
		}
		if _, err := m.RunWarmup(streams, 20_000, 50_000); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(cores*(20_000+50_000)*b.N)/b.Elapsed().Seconds(), "instr/s")
}

func BenchmarkWorkloadGeneration(b *testing.B) {
	cat := workload.NewCatalog(4, 2)
	spec, _ := cat.Get("srv_000")
	s := spec.NewStream()
	var in workload.Instr
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Next(&in)
	}
}

func BenchmarkSTLBLookupITP(b *testing.B) {
	stlb := tlb.New("stlb", 128, 12, core.NewITP(config.Default().ITP))
	for i := 0; i < 2000; i++ {
		cls := arch.DataClass
		if i%3 == 0 {
			cls = arch.InstrClass
		}
		stlb.Insert(arch.Addr(i)<<arch.PageBits4K, uint64(i), arch.PageBits4K, cls, 0, 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stlb.Lookup(arch.Addr(i%2000)<<arch.PageBits4K, 0, arch.DataClass, 0)
	}
}

func BenchmarkCacheAccessXPTP(b *testing.B) {
	cfg := config.Default().L2C
	pol := core.NewXPTP(config.Default().XPTP)
	var sink fixedLatency
	c := cache.New("l2", cfg, pol, &sink, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc := arch.Access{Addr: arch.Addr(i%100000) << arch.BlockBits, Kind: arch.Load}
		c.Access(uint64(i), &acc)
	}
}

func BenchmarkCacheAccessLRU(b *testing.B) {
	cfg := config.Default().L2C
	var sink fixedLatency
	c := cache.New("l2", cfg, replacement.NewLRU(), &sink, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc := arch.Access{Addr: arch.Addr(i%100000) << arch.BlockBits, Kind: arch.Load}
		c.Access(uint64(i), &acc)
	}
}

// fixedLatency is a constant-latency terminal level for cache benches.
type fixedLatency struct{}

func (fixedLatency) Access(now uint64, _ *arch.Access) uint64 { return now + 100 }

func itoa(n int) string { return strconv.Itoa(n) }
