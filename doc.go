// Package itpsim reproduces "Instruction-Aware Cooperative TLB and Cache
// Replacement Policies" (ASPLOS 2025): the iTP STLB replacement policy,
// the xPTP L2 cache replacement policy, their adaptive combination
// iTP+xPTP, the prior-work baselines they are evaluated against, and the
// trace-driven simulation substrate (out-of-order core, TLB hierarchy,
// page-table walker, caches, DRAM) everything runs on.
//
// The implementation lives under internal/; see README.md for the layout,
// cmd/ for the executables, and bench_test.go for the benchmark targets
// that regenerate each of the paper's figures.
package itpsim
