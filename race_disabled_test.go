//go:build !race

package itpsim

const raceEnabled = false
