//go:build !race

package itpsim

import "testing"

const raceEnabled = false

// TestRaceTagPlumbing pins the !race arm of the build-tag pair: this
// file is only compiled without -race, so if the test runs at all the
// constant must say so. See race_enabled_test.go for the other arm.
func TestRaceTagPlumbing(t *testing.T) {
	if raceEnabled {
		t.Fatal("built without -race but raceEnabled = true; build-tag plumbing is broken")
	}
}
