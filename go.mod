module itpsim

go 1.22
